// Command h2vet is H2Cloud's repo-specific static-analysis pass. It
// enforces the determinism and locking invariants the simulator's
// evaluation depends on (DESIGN.md, "Determinism & concurrency
// invariants"):
//
//	virtualtime   no time.Now/time.Since/time.Sleep inside internal/
//	              packages; wall-clock flows through internal/vclock or
//	              an injected clock
//	mapiter       no order-sensitive use (append without a later sort,
//	              encode, hash, write, broadcast, channel send) of a
//	              map iteration
//	lockcheck     mu.Lock() must be paired with defer mu.Unlock() in the
//	              same function, and no handler/callback/Broadcast-like
//	              calls while a lock is held
//	droppederr    error results of internal/core Decode*/Encode* and
//	              objstore/cluster Put/Get/Delete must not be discarded
//	backoffcheck  no time.Sleep/time.After/timer waits inside loops in
//	              internal/ packages; retry backoff is charged to
//	              internal/vclock, never the wall clock
//	costcheck     every objstore.Store implementation reaches
//	              vclock.Charge on its success paths, and wrappers that
//	              delegate to an inner Store do not double-charge
//	lockorder     the static lock-acquisition graph (mutex held -> mutex
//	              acquired, propagated through the call graph) must be
//	              acyclic with no same-mutex re-entry
//	sentinelcheck typed Err* sentinels are compared with errors.Is (never
//	              == / != or string matching), wrapped with %w, and every
//	              sentinel crossing internal/httpapi appears in both the
//	              server status table and the client reconstruction table
//	guardcheck    static race detection: accesses to mutex-guarded struct
//	              fields reachable from a go statement must hold the guard
//	leakcheck     every go-launched goroutine has a bounded exit from its
//	              loops
//	alloccheck    allocation patterns on the objstore/codec/ring hot paths
//	poolcheck     sync.Pool scratch is Put on every non-error path, cleared
//	              when it holds pointers, and never escapes the function
//	ctxcheck      objstore I/O receives the caller's context; no
//	              context.Background/TODO or undeclared WithoutCancel
//	              (//h2vet:durable) inside internal/
//	atomiccheck   fields accessed via sync/atomic are accessed atomically
//	              in all goroutine-reachable code
//	deadignore    //h2vet:ignore directives that suppress nothing
//
// The first five rules are per-unit and syntactic; the rest are
// whole-program: h2vet loads and type-checks the entire module once into
// a shared typed universe, builds a call graph over go/types (CHA
// expansion refined by Rapid Type Analysis — run `h2vet -explain
// callgraph` for the measured precision delta), and runs the analyzers
// in parallel over it. The dataflow rules (poolcheck, ctxcheck) ride on
// a hand-rolled CFG and def-use/alias pass (dataflow.go) instead of SSA,
// keeping the stdlib-only constraint.
//
// h2vet is built only on the standard library (go/ast, go/parser,
// go/types with the source importer), preserving the repo's
// no-external-dependencies rule. A diagnostic can be suppressed with a
// line directive on the flagged line or the line above it:
//
//	//h2vet:ignore <rule> <reason>
//
// Findings can be emitted as JSON (-json) and gated against a committed
// baseline (-baseline h2vet.baseline.json): all findings are printed, but
// only findings absent from the baseline affect the exit code.
//
// Usage: go run ./cmd/h2vet [-rules a,b] [-json] [-baseline file] [patterns...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one diagnostic. The baseline file
// is a JSON array of the same shape; col is ignored when matching against
// a baseline so unrelated edits above a tolerated finding don't re-open
// it (file+rule+msg identifies a finding; line drifts too easily).
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (f jsonFinding) key() string {
	return f.File + "\x00" + f.Rule + "\x00" + f.Msg
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("h2vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	debug := fs.Bool("debug", false, "print loader and type-checker warnings")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := fs.String("baseline", "", "JSON baseline file; findings present in it do not affect the exit code")
	explainFlag := fs.String("explain", "", "print the long-form documentation for one rule and exit")
	pkgFlag := fs.String("pkg", "", "with -explain guardcheck/alloccheck: restrict the printed table to one package path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := allAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *explainFlag != "" {
		if (analyzerByName(*explainFlag) == nil && *explainFlag != "callgraph") || explainTexts[*explainFlag] == "" {
			fmt.Fprintf(stderr, "h2vet: unknown rule %q (run h2vet -list)\n", *explainFlag)
			return 2
		}
		// Only the rules with computed tables need the typed module.
		var prog *Program
		if *explainFlag == "guardcheck" || *explainFlag == "alloccheck" || *explainFlag == "callgraph" {
			patterns := fs.Args()
			if len(patterns) == 0 {
				patterns = []string{"./..."}
			}
			var err error
			prog, _, err = load(patterns)
			if err != nil {
				fmt.Fprintf(stderr, "h2vet: %v\n", err)
				return 2
			}
		}
		explain(stdout, *explainFlag, prog, *pkgFlag)
		return 0
	}
	if *rulesFlag != "" {
		byName := map[string]*Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var keep []*Analyzer
		for _, r := range splitRules(*rulesFlag) {
			a, ok := byName[r]
			if !ok {
				fmt.Fprintf(stderr, "h2vet: unknown rule %q\n", r)
				return 2
			}
			keep = append(keep, a)
		}
		analyzers = keep
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, warnings, err := load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "h2vet: %v\n", err)
		return 2
	}
	if *debug {
		for _, w := range warnings {
			fmt.Fprintf(stderr, "h2vet: warning: %s\n", w)
		}
	}

	diags := runAll(prog, analyzers, *rulesFlag != "")

	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "h2vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}

	var baselineEntries []jsonFinding
	if *baselinePath != "" {
		baselineEntries, err = loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "h2vet: %v\n", err)
			return 2
		}
	}
	baseline := make(map[string]bool, len(baselineEntries))
	for _, f := range baselineEntries {
		baseline[f.key()] = true
	}
	fresh := 0
	matched := map[string]bool{}
	for _, d := range diags {
		f := jsonFinding{File: d.Pos.Filename, Rule: d.Rule, Msg: d.Msg}
		if baseline[f.key()] {
			matched[f.key()] = true
		} else {
			fresh++
		}
	}
	if known := len(diags) - fresh; known > 0 {
		fmt.Fprintf(stderr, "h2vet: %d finding(s) matched the baseline\n", known)
	}
	stale := staleBaseline(baselineEntries, matched)
	for _, f := range stale {
		fmt.Fprintf(stderr, "h2vet: stale baseline entry: %s: %s: %s\n", f.File, f.Rule, f.Msg)
	}
	if fresh > 0 {
		fmt.Fprintf(stderr, "h2vet: %d new finding(s)\n", fresh)
		return 1
	}
	if len(stale) > 0 {
		fmt.Fprintf(stderr, "h2vet: %d stale baseline entr%s no longer fire%s; prune %s\n",
			len(stale), plural(len(stale), "y", "ies"), plural(len(stale), "s", ""), *baselinePath)
		return 3
	}
	return 0
}

// staleBaseline returns the baseline entries no current finding matched,
// deduplicated, in file order. A stale entry means the tolerated finding
// was fixed: the baseline must be pruned or it will silently re-admit
// the same finding later.
func staleBaseline(entries []jsonFinding, matched map[string]bool) []jsonFinding {
	seen := map[string]bool{}
	var stale []jsonFinding
	for _, f := range entries {
		if k := f.key(); !matched[k] && !seen[k] {
			seen[k] = true
			stale = append(stale, f)
		}
	}
	return stale
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// runAll runs the per-unit half of each analyzer concurrently across
// units, and the whole-program half over the shared typed module, then
// merges and sorts. Per-unit results land in preassigned slots so the
// final ordering is independent of goroutine scheduling. subset records
// that -rules restricted the analyzer set, which limits what deadignore
// can conclude about directives for rules that did not run.
func runAll(prog *Program, analyzers []*Analyzer, subset bool) []Diagnostic {
	perUnit := make([][]Diagnostic, len(prog.units))
	perUsed := make([]map[string]map[int]map[string]bool, len(prog.units))
	var wg sync.WaitGroup
	for i, u := range prog.units {
		wg.Add(1)
		go func() {
			defer wg.Done()
			perUnit[i], perUsed[i] = runAnalyzers(u, analyzers)
		}()
	}
	progDiags, used := runProgramAnalyzers(prog, analyzers)
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perUnit {
		diags = append(diags, d...)
	}
	diags = append(diags, progDiags...)
	for _, u := range perUsed {
		for file, lines := range u {
			for line, rules := range lines {
				for rule := range rules {
					markUsed(used, file, line, rule)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.Name == deadignoreAnalyzer.Name {
			diags = append(diags, deadIgnores(prog, analyzers, subset, used)...)
		}
	}
	sortDiagnostics(diags)
	return diags
}

// writeJSON emits the diagnostics as a sorted JSON array ([] when empty).
func writeJSON(w io.Writer, diags []Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Msg: d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// loadBaseline reads a -json findings file.
func loadBaseline(path string) ([]jsonFinding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(data, &findings); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return findings, nil
}
