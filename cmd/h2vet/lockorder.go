package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockorderAnalyzer builds the program's static lock-acquisition graph
// and rejects shapes that can deadlock:
//
//   - an edge A -> B means some code path acquires mutex class B while
//     holding mutex class A, either directly or through any chain of
//     calls (propagated through the CHA call graph);
//   - a cycle A -> ... -> A means two executions can acquire the classes
//     in opposite orders — the classic deadlock;
//   - a self-edge A -> A means the same mutex class may be re-acquired
//     while already held — sync.Mutex self-deadlocks, and recursive
//     RLock deadlocks against a waiting writer.
//
// A mutex class is the declared variable behind the lock expression: a
// struct field (all instances of gossip.Bus.mu are one class), a package
// var, or a local. Class-level analysis conflates instances, so an
// intended hierarchy over two instances of one type needs an inline
// //h2vet:ignore lockorder <reason>.
var lockorderAnalyzer = &Analyzer{
	Name:       "lockorder",
	Doc:        "static lock-acquisition graph must be acyclic with no same-mutex re-entry",
	RunProgram: runLockorder,
}

// lockClass is one mutex class with a stable display name and sort key.
type lockClass struct {
	obj  *types.Var
	name string // e.g. "gossip.Bus.mu"
}

// heldCall is a function call made while a mutex class is held.
type heldCall struct {
	held    *types.Var
	callees []*types.Func
	pos     token.Pos
}

// lockFacts is what one declared function contributes to the graph.
type lockFacts struct {
	acquires map[*types.Var]token.Pos // classes this function locks directly
	edges    []lockEdge               // direct nested acquisitions
	calls    []heldCall               // calls under a held lock
}

type lockEdge struct {
	held, acquired *types.Var
	pos            token.Pos
}

func runLockorder(p *ProgramPass) {
	g := p.Prog.callGraph()

	// Deterministic function order: facts and first-seen class names must
	// not depend on map iteration.
	fns := make([]*types.Func, 0, len(g.funcs))
	for fn := range g.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return objKey(fns[i]) < objKey(fns[j]) })

	classes := map[*types.Var]*lockClass{}
	facts := map[*types.Func]*lockFacts{}
	for _, fn := range fns {
		facts[fn] = collectLockFacts(g, g.funcs[fn], classes)
	}

	// Transitive acquisition sets to a fixed point (the call graph may be
	// cyclic, so a single DFS pass can under-approximate).
	acqStar := map[*types.Func]map[*types.Var]token.Pos{}
	for _, fn := range fns {
		set := map[*types.Var]token.Pos{}
		for cls, pos := range facts[fn].acquires {
			set[cls] = pos
		}
		acqStar[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			set := acqStar[fn]
			for _, callee := range g.funcs[fn].callees {
				for cls, pos := range acqStar[callee] {
					if _, ok := set[cls]; !ok {
						set[cls] = pos
						changed = true
					}
				}
			}
		}
	}

	// Materialize edges: direct nested locks plus call-propagated ones.
	type edgeKey struct{ held, acquired *types.Var }
	witness := map[edgeKey]token.Pos{}
	addEdge := func(held, acquired *types.Var, pos token.Pos) {
		k := edgeKey{held, acquired}
		if old, ok := witness[k]; !ok || pos < old {
			witness[k] = pos
		}
	}
	for _, fn := range fns {
		for _, e := range facts[fn].edges {
			addEdge(e.held, e.acquired, e.pos)
		}
		for _, hc := range facts[fn].calls {
			for _, callee := range hc.callees {
				for cls := range acqStar[callee] {
					addEdge(hc.held, cls, hc.pos)
				}
			}
		}
	}

	name := func(cls *types.Var) string {
		if c := classes[cls]; c != nil {
			return c.name
		}
		return shortName(cls)
	}

	// Self-edges: same-mutex re-entry.
	var keys []edgeKey
	for k := range witness {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].held != keys[j].held {
			return name(keys[i].held) < name(keys[j].held)
		}
		return name(keys[i].acquired) < name(keys[j].acquired)
	})
	for _, k := range keys {
		if k.held == k.acquired {
			p.Reportf(witness[k], "mutex %s may be re-acquired while already held (same-mutex re-entry deadlocks)", name(k.held))
		}
	}

	// Cycles over distinct classes: Tarjan SCC on the edge graph.
	adj := map[*types.Var][]*types.Var{}
	for _, k := range keys {
		if k.held != k.acquired {
			adj[k.held] = append(adj[k.held], k.acquired)
		}
	}
	for _, scc := range stronglyConnected(adj, func(a, b *types.Var) bool { return name(a) < name(b) }) {
		if len(scc) < 2 {
			continue
		}
		// Report at the witness of the edge leaving the lexically smallest
		// class, naming the whole cycle.
		sort.Slice(scc, func(i, j int) bool { return name(scc[i]) < name(scc[j]) })
		inSCC := map[*types.Var]bool{}
		for _, cls := range scc {
			inSCC[cls] = true
		}
		first := scc[0]
		pos := token.NoPos
		for _, k := range keys {
			if k.held == first && inSCC[k.acquired] {
				pos = witness[k]
				break
			}
		}
		names := make([]string, len(scc))
		for i, cls := range scc {
			names[i] = name(cls)
		}
		p.Reportf(pos, "lock-order cycle between %s; acquire these mutexes in one consistent order", joinCycle(names))
	}
}

// collectLockFacts analyzes one declared function: every lock span (Lock
// to matching explicit Unlock, or to the end of the enclosing function
// scope when the unlock is deferred or absent) contributes the mutexes
// locked and the calls made while the span is open. Function literals are
// separate defer scopes for span matching, but their facts are attributed
// to the enclosing declared function — a closure's acquisitions happen
// during the enclosing call in the common inline case, which is the
// conservative direction.
func collectLockFacts(g *callGraph, fi *funcInfo, classes map[*types.Var]*lockClass) *lockFacts {
	facts := &lockFacts{acquires: map[*types.Var]token.Pos{}}
	info := fi.unit.info
	for _, scope := range lockScopes(fi.decl) {
		type acq struct {
			cls      *types.Var
			pos, end token.Pos
		}
		var spans []acq
		type rel struct {
			cls *types.Var
			pos token.Pos
		}
		var unlocks []rel
		// Pass 1: find every lock/unlock in this scope.
		inspectShallow(scope, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cls, method, ok := mutexClass(info, call)
			if !ok {
				return true
			}
			if _, seen := classes[cls]; !seen {
				classes[cls] = &lockClass{obj: cls, name: lockClassName(info, call, cls)}
			}
			switch method {
			case "Lock", "RLock":
				spans = append(spans, acq{cls: cls, pos: call.Pos(), end: scope.End()})
			case "Unlock", "RUnlock":
				// Deferred unlocks hold to scope end; only direct unlock
				// statements close a span early. Whether this call sits
				// under a defer is decided in pass 2.
				unlocks = append(unlocks, rel{cls: cls, pos: call.Pos()})
			}
			return true
		})
		// Pass 2: deferred unlocks do not close spans.
		deferredAt := map[token.Pos]bool{}
		inspectShallow(scope, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferredAt[d.Call.Pos()] = true
			}
			return true
		})
		for i := range spans {
			for _, ul := range unlocks {
				if ul.cls == spans[i].cls && ul.pos > spans[i].pos && ul.pos < spans[i].end && !deferredAt[ul.pos] {
					spans[i].end = ul.pos
				}
			}
			facts.recordAcquire(spans[i].cls, spans[i].pos)
		}
		// Pass 3: what happens inside each span.
		inspectShallow(scope, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, sp := range spans {
				if call.Pos() <= sp.pos || call.Pos() >= sp.end {
					continue
				}
				if cls, method, ok := mutexClass(info, call); ok {
					if method == "Lock" || method == "RLock" {
						facts.edges = append(facts.edges, lockEdge{held: sp.cls, acquired: cls, pos: call.Pos()})
					}
					continue
				}
				if callees := g.calleesOf(info, call); len(callees) > 0 {
					facts.calls = append(facts.calls, heldCall{held: sp.cls, callees: callees, pos: call.Pos()})
				}
			}
			return true
		})
	}
	return facts
}

func (f *lockFacts) recordAcquire(cls *types.Var, pos token.Pos) {
	if old, ok := f.acquires[cls]; !ok || pos < old {
		f.acquires[cls] = pos
	}
}

// lockScopes returns the defer scopes of a declared function: its own
// body plus each nested function literal body.
func lockScopes(decl *ast.FuncDecl) []*ast.BlockStmt {
	scopes := []*ast.BlockStmt{decl.Body}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, lit.Body)
		}
		return true
	})
	return scopes
}

// mutexClass resolves <expr>.Lock/RLock/Unlock/RUnlock() to the declared
// mutex variable behind the expression: a struct field, package var, or
// local. Receivers that don't resolve to a sync mutex variable are
// skipped.
func mutexClass(info *types.Info, call *ast.CallExpr) (cls *types.Var, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	if t := info.TypeOf(sel.X); t == nil || !isSyncMutex(t) {
		return nil, "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok {
				return v, sel.Sel.Name, true
			}
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok {
			return v, sel.Sel.Name, true
		}
	}
	return nil, "", false
}

// lockClassName renders a stable display name for a mutex class:
// pkg.Type.field for fields, pkg.var otherwise.
func lockClassName(info *types.Info, call *ast.CallExpr, cls *types.Var) string {
	pkg := ""
	if cls.Pkg() != nil {
		pkg = cls.Pkg().Name()
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if sel != nil {
		if x, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if s := info.Selections[x]; s != nil {
				if tn := recvTypeName(s.Recv()); tn != "" {
					return fmt.Sprintf("%s.%s.%s", pkg, tn, cls.Name())
				}
			}
		}
	}
	return pkg + "." + cls.Name()
}

// calleesOf resolves one call expression to the functions it may invoke,
// expanding interface methods over the program's instantiated types (the
// same RTA refinement the precomputed sites get).
func (g *callGraph) calleesOf(info *types.Info, call *ast.CallExpr) []*types.Func {
	obj := staticCallee(info, call)
	if obj == nil {
		return nil
	}
	if recvInterface(obj) != nil {
		out := []*types.Func{obj}
		for _, impl := range g.implementations(obj) {
			if g.chaOnly || g.inst[recvNamed(impl)] {
				out = append(out, impl)
			}
		}
		return out
	}
	return []*types.Func{obj}
}

// stronglyConnected returns the strongly connected components of the
// class graph (Tarjan), with deterministic ordering via less.
func stronglyConnected(adj map[*types.Var][]*types.Var, less func(a, b *types.Var) bool) [][]*types.Var {
	nodes := make([]*types.Var, 0, len(adj))
	seenNode := map[*types.Var]bool{}
	addNode := func(v *types.Var) {
		if !seenNode[v] {
			seenNode[v] = true
			nodes = append(nodes, v)
		}
	}
	for v, outs := range adj {
		addNode(v)
		for _, w := range outs {
			addNode(w)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return less(nodes[i], nodes[j]) })

	index := map[*types.Var]int{}
	low := map[*types.Var]int{}
	onStack := map[*types.Var]bool{}
	var stack []*types.Var
	var sccs [][]*types.Var
	next := 0
	var strong func(v *types.Var)
	strong = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		outs := append([]*types.Var{}, adj[v]...)
		sort.Slice(outs, func(i, j int) bool { return less(outs[i], outs[j]) })
		for _, w := range outs {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return sccs
}

// joinCycle renders "a -> b -> a" for a sorted class-name cycle.
func joinCycle(names []string) string {
	out := ""
	for _, n := range names {
		out += n + " -> "
	}
	return out + names[0]
}
