package main

import "testing"

// TestGuardcheck seeds the exact defect the rule exists for: a struct
// whose field is locked at most sites, and one goroutine-reachable
// access that skips the lock.
func TestGuardcheck(t *testing.T) {
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			// The required self-test: a deliberately unguarded access in a
			// go-launched literal, against an inferred guard.
			name: "seeded unguarded access in go literal",
			impl: `package fake

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Dec() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
}

func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 0
}

func Race(c *Counter) {
	go func() {
		c.n = 42
	}()
}
`,
			want: []string{
				"internal/fake/impl.go:30:5: guardcheck: field fake.Counter.n accessed without its guard fake.Counter.mu (inferred: held at 3 of 4 sites) on a path reachable from the goroutine launched at internal/fake/impl.go:29",
			},
		},
		{
			name: "goroutine locking before access is clean",
			impl: `package fake

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Dec() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
}

func Race(c *Counter) {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n = 42
	}()
}
`,
			want: nil,
		},
		{
			// addLocked never locks but inherits its callers' lockset; the
			// `go c.addLocked()` edge empties the entry meet and makes the
			// access goroutine-reachable without the guard.
			name: "lockset propagation through Locked helper",
			impl: `package fake

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Dec() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
}

func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 0
}

func (c *Counter) addLocked(d int) {
	c.n += d
}

func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(d)
}

func Bad(c *Counter) {
	go c.addLocked(2)
}
`,
			want: []string{
				"internal/fake/impl.go:29:4: guardcheck: field fake.Counter.n accessed without its guard fake.Counter.mu (inferred: held at 3 of 4 sites) on a path reachable from the goroutine launched at internal/fake/impl.go:39",
			},
		},
		{
			// With the go statement removed, the same helper is only ever
			// entered with the lock held: no finding, and the helper's own
			// site counts as guarded.
			name: "Locked helper called only under the lock is clean",
			impl: `package fake

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) addLocked(d int) {
	c.n += d
}

func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(d)
}

func Spawn(c *Counter) {
	go c.Add(1)
}
`,
			want: nil,
		},
		{
			// Too few locked sites for inference, but the annotation seeds
			// the guard directly.
			name: "guardedby annotation overrides weak inference",
			impl: `package fake

import "sync"

type Reg struct {
	mu sync.Mutex
	//h2vet:guardedby mu
	v int
}

func (r *Reg) Set(v int) {
	r.v = v
}

func Run(r *Reg) {
	go r.Set(1)
}
`,
			want: []string{
				"internal/fake/impl.go:12:4: guardcheck: field fake.Reg.v accessed without its guard fake.Reg.mu (//h2vet:guardedby annotation) on a path reachable from the goroutine launched at internal/fake/impl.go:16",
			},
		},
		{
			name: "malformed guardedby annotation reported",
			impl: `package fake

import "sync"

type Reg struct {
	mu sync.Mutex
	//h2vet:guardedby lock
	v int
}

func (r *Reg) Set(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}
`,
			want: []string{
				"internal/fake/impl.go:8:2: guardcheck: //h2vet:guardedby lock: the declaring struct has no sync.Mutex/RWMutex field named \"lock\"",
			},
		},
		{
			name: "ignore directive suppresses the finding",
			impl: `package fake

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Dec() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
}

func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 0
}

func Race(c *Counter) {
	go func() {
		//h2vet:ignore guardcheck racy by design, test only
		c.n = 42
	}()
}
`,
			want: nil,
		},
		{
			// A conditional early unlock-and-return must not truncate the
			// span: the fallthrough path still holds the lock.
			name: "early-exit unlock keeps the fallthrough span",
			impl: `package fake

import "sync"

type Counter struct {
	mu  sync.Mutex
	n   int
	bad bool
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Dec() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
}

func (c *Counter) Bump() int {
	c.mu.Lock()
	if c.bad {
		c.mu.Unlock()
		return -1
	}
	c.n++
	v := c.n
	c.mu.Unlock()
	return v
}

func Run(c *Counter) {
	go c.Bump()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, guardcheckAnalyzer, map[string]string{"internal/fake/impl.go": tc.impl})
			expectDiags(t, got, tc.want)
		})
	}
}

func TestLeakcheck(t *testing.T) {
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			name: "go literal with no-exit for-select leaks",
			impl: `package fake

type W struct{ ch chan int }

func (w *W) Start() {
	go func() {
		for {
			select {
			case <-w.ch:
			}
		}
	}()
}
`,
			want: []string{
				"internal/fake/impl.go:6:2: leakcheck: goroutine never exits: the unconditional loop at internal/fake/impl.go:7 has no return or loop break; return on <-ctx.Done(), exit on a closed channel, or bound the loop",
			},
		},
		{
			name: "break inside select is the pitfall variant",
			impl: `package fake

type W struct{ done chan struct{} }

func (w *W) Start() {
	go func() {
		for {
			select {
			case <-w.done:
				break
			}
		}
	}()
}
`,
			want: []string{
				"internal/fake/impl.go:6:2: leakcheck: goroutine never exits: the unconditional loop at internal/fake/impl.go:7 has no return or loop break (its break exits the enclosing select/switch, not the loop); return on <-ctx.Done() or a closed channel",
			},
		},
		{
			name: "for-range over a ticker channel leaks",
			impl: `package fake

import "time"

func Start(t *time.Ticker) {
	go func() {
		for range t.C {
		}
	}()
}
`,
			want: []string{
				"internal/fake/impl.go:6:2: leakcheck: goroutine never exits: the for-range over a time.Ticker channel at internal/fake/impl.go:7 never terminates (tickers are never closed); select on <-ctx.Done() alongside <-ticker.C",
			},
		},
		{
			name: "ctx.Done return bounds the goroutine",
			impl: `package fake

import "context"

type W struct{ ch chan int }

func (w *W) Start(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-w.ch:
			}
		}
	}()
}
`,
			want: nil,
		},
		{
			// The leak hides one helper down from the spawned method; the
			// walk attributes it to the go statement.
			name: "leak in transitive callee of named go target",
			impl: `package fake

type W struct{ ch chan int }

func (w *W) spin() {
	for {
		<-w.ch
	}
}

func (w *W) run() {
	w.spin()
}

func (w *W) Start() {
	go w.run()
}
`,
			want: []string{
				"internal/fake/impl.go:16:2: leakcheck: goroutine never exits: the unconditional loop at internal/fake/impl.go:6 has no return or loop break; return on <-ctx.Done(), exit on a closed channel, or bound the loop",
			},
		},
		{
			name: "labeled break out of nested loop is an exit",
			impl: `package fake

type W struct{ ch chan int }

func (w *W) Start() {
	go func() {
	outer:
		for {
			for {
				if <-w.ch == 0 {
					break outer
				}
			}
		}
	}()
}
`,
			want: nil,
		},
		{
			name: "closed-channel range loop is not flagged",
			impl: `package fake

type W struct{ ch chan int }

func (w *W) Start() {
	go func() {
		for v := range w.ch {
			_ = v
		}
	}()
}
`,
			want: nil,
		},
		{
			name: "ignore directive on the go statement",
			impl: `package fake

type W struct{ ch chan int }

func (w *W) Start() {
	//h2vet:ignore leakcheck daemon runs for process lifetime by design
	go func() {
		for {
			<-w.ch
		}
	}()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, leakcheckAnalyzer, map[string]string{"internal/fake/impl.go": tc.impl})
			expectDiags(t, got, tc.want)
		})
	}
}

func TestAlloccheck(t *testing.T) {
	// A Store implementation makes internal/fake hot; sibling helpers are
	// hot only when reachable from a primitive or opted in.
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			name: "Sprintf on a store primitive, error paths exempt",
			impl: `package fake

import "fmt"

type S struct{}

func (s *S) Put(name string, data []byte) error {
	key := fmt.Sprintf("k-%s", name)
	_ = key
	if len(data) == 0 {
		return fmt.Errorf("fake: %s: empty", name)
	}
	return nil
}

func (s *S) Get(name string) ([]byte, error) {
	return nil, fmt.Errorf("fake: %s: not found", name)
}
`,
			want: []string{
				"internal/fake/impl.go:8:9: alloccheck: fmt.Sprintf allocates per call on the hot path; build the value with strconv/append or move it to an error path",
			},
		},
		{
			// The allocation is in a helper the primitive reaches, not the
			// primitive itself; a non-hot sibling with the same body stays
			// silent.
			name: "reachable helper checked, unreachable sibling not",
			impl: `package fake

import "fmt"

type S struct{}

func (s *S) Put(name string, data []byte) error {
	return nil
}

func (s *S) Get(name string) ([]byte, error) {
	return encode(name), nil
}

func encode(name string) []byte {
	return []byte(fmt.Sprintf("k-%s", name))
}

func cold(name string) []byte {
	return []byte(fmt.Sprintf("k-%s", name))
}
`,
			want: []string{
				"internal/fake/impl.go:16:16: alloccheck: fmt.Sprintf allocates per call on the hot path; build the value with strconv/append or move it to an error path",
			},
		},
		{
			name: "unsized append growth and per-iteration maps in loops",
			impl: `package fake

type S struct{}

func (s *S) Put(name string, data []byte) error {
	var keys []string
	sized := make([]string, 0, len(data))
	for _, b := range data {
		keys = append(keys, string(b))
		sized = append(sized, string(b))
		m := map[string]int{"b": int(b)}
		_ = m
	}
	_ = keys
	return nil
}

func (s *S) Get(name string) ([]byte, error) {
	out := make(map[string][]byte)
	for i := 0; i < 3; i++ {
		seen := make(map[int]bool)
		_ = seen
	}
	_ = out
	return nil, nil
}
`,
			want: []string{
				"internal/fake/impl.go:9:10: alloccheck: append grows keys in a hot-path loop but it was declared without capacity; pre-size it with make(..., 0, n)",
				"internal/fake/impl.go:11:8: alloccheck: map literal allocated per iteration in a hot-path loop; hoist it out of the loop or reuse one map",
				"internal/fake/impl.go:21:11: alloccheck: map allocated per iteration in a hot-path loop; hoist it out of the loop or reuse one map",
			},
		},
		{
			name: "string byte round trip",
			impl: `package fake

type S struct{}

func (s *S) Put(name string, data []byte) error {
	clone := []byte(string(data))
	_ = clone
	return nil
}

func (s *S) Get(name string) ([]byte, error) {
	return nil, nil
}
`,
			want: []string{
				"internal/fake/impl.go:6:11: alloccheck: string <-> []byte round-trip conversion allocates twice on the hot path; keep one representation",
			},
		},
		{
			name: "hotpath directive opts a free function in",
			impl: `package fake

import "fmt"

type S struct{}

func (s *S) Put(name string, data []byte) error { return nil }

func (s *S) Get(name string) ([]byte, error) { return nil, nil }

//h2vet:hotpath
func Render(n int) string {
	return fmt.Sprintf("n=%d", n)
}
`,
			want: []string{
				"internal/fake/impl.go:13:9: alloccheck: fmt.Sprintf allocates per call on the hot path; build the value with strconv/append or move it to an error path",
			},
		},
		{
			name: "ignore directive suppresses the finding",
			impl: `package fake

import "fmt"

type S struct{}

func (s *S) Put(name string, data []byte) error {
	//h2vet:ignore alloccheck debug label, off by default
	key := fmt.Sprintf("k-%s", name)
	_ = key
	return nil
}

func (s *S) Get(name string) ([]byte, error) { return nil, nil }
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, alloccheckAnalyzer, map[string]string{
				"internal/objstore/store.go": miniObjstore,
				"internal/fake/impl.go":      tc.impl,
			})
			expectDiags(t, got, tc.want)
		})
	}
}

// TestAlloccheckCoreEntries covers the named NameRing entry points: a
// shadowed internal/core package's Encode*/Decode*/Merged functions are
// hot without any Store in sight.
func TestAlloccheckCoreEntries(t *testing.T) {
	got := checkProgram(t, alloccheckAnalyzer, map[string]string{
		"internal/core/codec.go": `package core

import "fmt"

func EncodeThing(n int) []byte {
	return []byte(fmt.Sprintf("n=%d", n))
}

func helper(n int) string {
	return fmt.Sprintf("h-%d", n)
}

func Merged(a, b []byte) []byte {
	_ = helper(1)
	return a
}
`,
	})
	expectDiags(t, got, []string{
		"internal/core/codec.go:6:16: alloccheck: fmt.Sprintf allocates per call on the hot path; build the value with strconv/append or move it to an error path",
		"internal/core/codec.go:10:9: alloccheck: fmt.Sprintf allocates per call on the hot path; build the value with strconv/append or move it to an error path",
	})
}

// TestAlloccheckNameRingMethods covers the append-into-caller-buffer
// NameRing methods added to the hot set: AppendAll is hot by name, an
// unexported sibling it never calls is not.
func TestAlloccheckNameRingMethods(t *testing.T) {
	got := checkProgram(t, alloccheckAnalyzer, map[string]string{
		"internal/core/codec.go": `package core

import "fmt"

type Tuple struct{ Name string }

type NameRing struct{ children map[string]Tuple }

func (r *NameRing) AppendAll(dst []Tuple) []Tuple {
	key := fmt.Sprintf("ring-%d", len(r.children))
	_ = key
	return dst
}

func (r *NameRing) cold(n int) string {
	return fmt.Sprintf("c-%d", n)
}
`,
	})
	expectDiags(t, got, []string{
		"internal/core/codec.go:10:9: alloccheck: fmt.Sprintf allocates per call on the hot path; build the value with strconv/append or move it to an error path",
	})
}

// TestAlloccheckRingAppendEntries covers the cached/append ring
// placement variants: DevicesAppend and DeviceIDs are hot by name
// without any Store in the program.
func TestAlloccheckRingAppendEntries(t *testing.T) {
	got := checkProgram(t, alloccheckAnalyzer, map[string]string{
		"internal/ring/ring.go": `package ring

import "fmt"

type Ring struct{ ids []int }

func (r *Ring) DevicesAppend(name string, dst []int) []int {
	key := fmt.Sprintf("k-%s", name)
	_ = key
	return append(dst, r.ids...)
}

func (r *Ring) DeviceIDs() []int {
	out := make([]int, len(r.ids))
	copy(out, r.ids)
	return out
}
`,
	})
	expectDiags(t, got, []string{
		"internal/ring/ring.go:8:9: alloccheck: fmt.Sprintf allocates per call on the hot path; build the value with strconv/append or move it to an error path",
	})
}

// TestAlloccheckSyncPoolIdiom locks in the pooled-scratch contract: a
// hot primitive that takes sync.Pool scratch at entry, appends into the
// recycled buffer, and Puts it back produces no findings — pooling is
// the blessed fix for per-call working sets, not a hidden allocation.
// Pooling does not excuse unrelated per-iteration allocations, though.
func TestAlloccheckSyncPoolIdiom(t *testing.T) {
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			name: "pooled scratch get/put not flagged",
			impl: `package fake

import "sync"

type S struct{}

var scratch = sync.Pool{New: func() any { s := make([]byte, 0, 64); return &s }}

func (s *S) Put(name string, data []byte) error {
	sp := scratch.Get().(*[]byte)
	buf := (*sp)[:0]
	for _, b := range data {
		buf = append(buf, b)
	}
	*sp = buf[:0]
	scratch.Put(sp)
	return nil
}

func (s *S) Get(name string) ([]byte, error) { return nil, nil }
`,
			want: nil,
		},
		{
			name: "pooling does not excuse per-iteration maps",
			impl: `package fake

import "sync"

type S struct{}

var scratch = sync.Pool{New: func() any { s := make([]byte, 0, 64); return &s }}

func (s *S) Put(name string, data []byte) error {
	sp := scratch.Get().(*[]byte)
	buf := (*sp)[:0]
	for _, b := range data {
		buf = append(buf, b)
		m := map[string]int{"b": int(b)}
		_ = m
	}
	*sp = buf[:0]
	scratch.Put(sp)
	return nil
}

func (s *S) Get(name string) ([]byte, error) { return nil, nil }
`,
			want: []string{
				"internal/fake/impl.go:14:8: alloccheck: map literal allocated per iteration in a hot-path loop; hoist it out of the loop or reuse one map",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, alloccheckAnalyzer, map[string]string{
				"internal/objstore/store.go": miniObjstore,
				"internal/fake/impl.go":      tc.impl,
			})
			expectDiags(t, got, tc.want)
		})
	}
}

func TestDeadignore(t *testing.T) {
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			// One live suppression (virtualtime really fires there), one
			// stale one, one typo'd rule name.
			name: "stale and unknown directives reported, live one kept",
			impl: `package fake

import "time"

//h2vet:ignore virtualtime injected test clock seam
func now() time.Time { return time.Now() }

//h2vet:ignore virtualtime nothing fires here
func pure(a, b int) int { return a + b }

//h2vet:ignore virtualtme typo'd rule name
func alsoPure(a, b int) int { return a - b }
`,
			want: []string{
				"internal/fake/impl.go:8:1: deadignore: //h2vet:ignore virtualtime suppresses nothing: no virtualtime finding on this line or the next; delete the stale directive",
				"internal/fake/impl.go:11:1: deadignore: //h2vet:ignore virtualtme suppresses nothing: unknown rule (see h2vet -list)",
			},
		},
		{
			// An explicit deadignore suppression keeps a deliberately
			// stale directive (e.g. one kept for a flaky generator).
			name: "deadignore finding is itself suppressible",
			impl: `package fake

//h2vet:ignore deadignore directive below guards generated code that sometimes reappears
//h2vet:ignore virtualtime generated code uses wall clock
func pure(a, b int) int { return a + b }
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgramRules(t, []*Analyzer{virtualtimeAnalyzer, deadignoreAnalyzer},
				map[string]string{"internal/fake/impl.go": tc.impl})
			expectDiags(t, got, tc.want)
		})
	}
}
