package main

import (
	"strings"
	"testing"
)

func TestStaleBaseline(t *testing.T) {
	entries := []jsonFinding{
		{File: "a.go", Rule: "lockcheck", Msg: "still fires"},
		{File: "b.go", Rule: "mapiter", Msg: "fixed long ago"},
		{File: "b.go", Rule: "mapiter", Msg: "fixed long ago"}, // dup collapses
	}
	matched := map[string]bool{entries[0].key(): true}
	stale := staleBaseline(entries, matched)
	if len(stale) != 1 || stale[0].File != "b.go" || stale[0].Rule != "mapiter" {
		t.Fatalf("stale = %+v, want the single unmatched b.go entry", stale)
	}
	if got := staleBaseline(entries, map[string]bool{
		entries[0].key(): true, entries[1].key(): true,
	}); len(got) != 0 {
		t.Fatalf("fully matched baseline reported stale entries: %+v", got)
	}
}

// Every registered rule must have long-form -explain documentation, and
// explain must render it even without a loaded program.
func TestExplainCoversAllRules(t *testing.T) {
	for _, a := range allAnalyzers() {
		text, ok := explainTexts[a.Name]
		if !ok || strings.TrimSpace(text) == "" {
			t.Errorf("rule %s has no -explain text", a.Name)
			continue
		}
		var sb strings.Builder
		explain(&sb, a.Name, nil, "")
		out := sb.String()
		if !strings.Contains(out, a.Name) || !strings.Contains(out, a.Doc) {
			t.Errorf("explain(%s) output missing rule name or doc line:\n%s", a.Name, out)
		}
	}
}
