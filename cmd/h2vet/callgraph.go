package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// callGraph is the whole-program call graph over the shared typed
// universe. Static calls resolve to their exact callee; calls through an
// interface method are first expanded CHA-style (class-hierarchy
// analysis: every concrete program type implementing the interface) and
// then refined RTA-style (rapid type analysis): an interface edge
// survives only when its receiver type is actually instantiated in code
// reachable from the roots — package main, init functions, and the
// exported API surface tests and external packages drive. Calls through
// plain function values are unresolvable and omitted — the lockcheck rule
// independently bans invoking those under a lock, so the lock analyzers
// lose nothing.
//
// Function literals have no *types.Func of their own; their call sites
// are attributed to the enclosing declared function, which matches how
// facts should flow (a retry wrapper's `func() { inner.Get(...) }` is the
// wrapper method delegating).
//
// Run `h2vet -explain callgraph` for the CHA-vs-RTA edge counts and the
// per-rule finding deltas the refinement buys.
type callGraph struct {
	prog    *Program
	chaOnly bool // keep the unrefined CHA edges (used by -explain callgraph)
	funcs   map[*types.Func]*funcInfo
	named   []*types.Named // concrete named types declared in the program

	implCache map[*types.Func][]*types.Func // interface method -> CHA implementations

	inst      map[*types.Named]bool // RTA: types instantiated in reachable code
	reachable map[*types.Func]bool  // RTA: functions reachable from the roots
	stats     graphStats
}

// graphStats quantifies what the RTA refinement removed; -explain
// callgraph prints it.
type graphStats struct {
	funcs, roots, reachable      int
	named, instantiated          int
	ifaceSites                   int
	chaEdges, rtaEdges           int
	chaIfaceEdges, rtaIfaceEdges int
}

// funcInfo is one call-graph node: a declared function or method with a
// body in the program.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	unit *unit
	// sites lists the function's call sites in source order with their
	// resolved callees (CHA-expanded for interface calls).
	sites []callSite
	// callees is the deduplicated, deterministically ordered union of all
	// sites' callees.
	callees []*types.Func
}

// callSite is one call expression and the callees it may reach. callees
// holds the RTA-refined edge set the analyzers consume; chaCallees keeps
// the full CHA expansion so -explain callgraph can report the delta.
type callSite struct {
	call       *ast.CallExpr
	iface      bool // resolved through an interface method
	callees    []*types.Func
	chaCallees []*types.Func
}

// buildCallGraph indexes every declared function in the program's source
// units, resolves each call site CHA-style, and refines the interface
// edges with RTA.
func buildCallGraph(prog *Program) *callGraph {
	return buildCallGraphMode(prog, false)
}

// buildCallGraphMode is buildCallGraph with the RTA refinement optionally
// disabled, for measuring what the refinement removes.
func buildCallGraphMode(prog *Program, chaOnly bool) *callGraph {
	g := &callGraph{
		prog:      prog,
		chaOnly:   chaOnly,
		funcs:     map[*types.Func]*funcInfo{},
		implCache: map[*types.Func][]*types.Func{},
		inst:      map[*types.Named]bool{},
		reachable: map[*types.Func]bool{},
	}
	// Pass 1: collect named types and function declarations.
	for _, u := range prog.source {
		for _, f := range u.files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					if obj, ok := u.info.Defs[d.Name].(*types.Func); ok && obj != nil {
						g.funcs[obj] = &funcInfo{obj: obj, decl: d, unit: u}
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok || ts.Assign.IsValid() { // skip aliases
							continue
						}
						tn, ok := u.info.Defs[ts.Name].(*types.TypeName)
						if !ok || tn == nil {
							continue
						}
						if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
							g.named = append(g.named, named)
						}
					}
				}
			}
		}
	}
	sort.Slice(g.named, func(i, j int) bool {
		return objKey(g.named[i].Obj()) < objKey(g.named[j].Obj())
	})
	// Pass 2: resolve call sites (CHA expansion).
	for _, fi := range g.funcs {
		g.resolveSites(fi)
	}
	// Pass 3: RTA refinement — drop interface edges to types never
	// instantiated in reachable code.
	g.refineRTA()
	return g
}

// sortedFuncs returns the graph's functions in deterministic order.
func (g *callGraph) sortedFuncs() []*types.Func {
	fns := make([]*types.Func, 0, len(g.funcs))
	for fn := range g.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return objKey(fns[i]) < objKey(fns[j]) })
	return fns
}

// funcFacts is what RTA needs from one function body: the program
// functions it references (as callees or as values) and the named types
// it instantiates.
type funcFacts struct {
	refs []*types.Func
	inst []*types.Named
}

// collectFuncFacts scans one function body. Every use of a *types.Func
// counts as a reference (static calls, method values, functions passed as
// values — a function whose address is taken can be invoked anywhere, so
// it must count as reachable). Instantiations are composite literals,
// new(T), conversions to a named type, and local declarations of a named
// concrete type.
func collectFuncFacts(info *types.Info, body ast.Node) funcFacts {
	var facts funcFacts
	seenFn := map[*types.Func]bool{}
	seenT := map[*types.Named]bool{}
	addT := func(t types.Type) {
		named := namedConcrete(t)
		if named != nil && !seenT[named] {
			seenT[named] = true
			facts.inst = append(facts.inst, named)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[n].(*types.Func); ok && fn != nil && !seenFn[fn] {
				seenFn[fn] = true
				facts.refs = append(facts.refs, fn)
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				addT(tv.Type)
			}
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			if tv, ok := info.Types[fun]; ok && tv.IsType() {
				addT(tv.Type) // conversion T(x)
			}
			if id, ok := fun.(*ast.Ident); ok && id.Name == "new" {
				if tv, ok := info.Types[n]; ok {
					addT(tv.Type) // new(T) yields *T
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if tv, ok := info.Types[n.Type]; ok {
					addT(tv.Type)
				}
			}
		}
		return true
	})
	return facts
}

// namedConcrete unwraps pointers and returns the named non-interface type
// behind t, or nil.
func namedConcrete(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || types.IsInterface(named) {
		return nil
	}
	return named
}

// markInstantiated adds a type and, transitively, the named types of its
// value-embedded fields and array elements (instantiating the outer value
// instantiates them too).
func (g *callGraph) markInstantiated(named *types.Named) bool {
	if named == nil || g.inst[named] {
		return false
	}
	g.inst[named] = true
	switch u := named.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if inner, ok := u.Field(i).Type().(*types.Named); ok {
				g.markInstantiated(namedConcrete(inner))
			} else if arr, ok := u.Field(i).Type().(*types.Array); ok {
				g.markInstantiated(namedConcrete(arr.Elem()))
			}
		}
	case *types.Array:
		g.markInstantiated(namedConcrete(u.Elem()))
	}
	return true
}

// refineRTA computes the reachable-function and instantiated-type sets
// from the graph's roots and drops interface edges whose receiver type is
// never instantiated. Roots are package main, init functions, and every
// exported function or method — the surface tests and external packages
// can drive. Package-level variable initializers instantiate their types
// unconditionally (they run at import).
func (g *callGraph) refineRTA() {
	fns := g.sortedFuncs()
	g.stats.funcs = len(fns)
	g.stats.named = len(g.named)

	// Package-level declarations instantiate unconditionally.
	for _, u := range g.prog.source {
		for _, f := range u.files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					facts := collectFuncFacts(u.info, vs)
					for _, t := range facts.inst {
						g.markInstantiated(t)
					}
					for _, fn := range facts.refs {
						if g.funcs[fn] != nil {
							g.reachable[fn] = true
						}
					}
				}
			}
		}
	}

	// Roots: main, init, the exported API surface.
	for _, fn := range fns {
		fi := g.funcs[fn]
		isMain := fi.unit.pkg != nil && fi.unit.pkg.Name() == "main"
		if isMain || fn.Name() == "init" || ast.IsExported(fn.Name()) {
			g.reachable[fn] = true
			g.stats.roots++
		}
	}

	// Fixpoint: process reachable bodies, collecting references and
	// instantiations; interface edges activate once their receiver type
	// is instantiated.
	factCache := map[*types.Func]funcFacts{}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if !g.reachable[fn] {
				continue
			}
			fi := g.funcs[fn]
			facts, ok := factCache[fn]
			if !ok {
				facts = collectFuncFacts(fi.unit.info, fi.decl.Body)
				factCache[fn] = facts
			}
			for _, t := range facts.inst {
				if g.markInstantiated(t) {
					changed = true
				}
			}
			for _, ref := range facts.refs {
				if g.funcs[ref] != nil && !g.reachable[ref] {
					g.reachable[ref] = true
					changed = true
				}
			}
			for _, site := range fi.sites {
				if !site.iface {
					continue
				}
				for _, callee := range site.chaCallees {
					if recvInterface(callee) != nil || g.funcs[callee] == nil || g.reachable[callee] {
						continue
					}
					if g.inst[recvNamed(callee)] {
						g.reachable[callee] = true
						changed = true
					}
				}
			}
		}
	}
	g.stats.reachable = len(g.reachable)
	// g.inst also holds types outside the program (embedded sync.Mutex and
	// friends marked transitively); count only the program's own types.
	for _, named := range g.named {
		if g.inst[named] {
			g.stats.instantiated++
		}
	}

	// Filter: an interface edge survives when its receiver type is
	// instantiated. The interface method itself always stays — it is the
	// dispatch boundary rules like costcheck test against.
	for _, fn := range fns {
		fi := g.funcs[fn]
		for i := range fi.sites {
			site := &fi.sites[i]
			g.stats.chaEdges += len(site.chaCallees)
			if site.iface {
				g.stats.ifaceSites++
				g.stats.chaIfaceEdges += len(site.chaCallees)
			}
			if !site.iface || g.chaOnly {
				site.callees = site.chaCallees
			} else {
				site.callees = site.chaCallees[:0:0]
				for _, callee := range site.chaCallees {
					if recvInterface(callee) != nil || g.inst[recvNamed(callee)] {
						site.callees = append(site.callees, callee)
					}
				}
			}
			g.stats.rtaEdges += len(site.callees)
			if site.iface {
				g.stats.rtaIfaceEdges += len(site.callees)
			}
		}
		// Recompute the deduplicated union over the refined sites.
		fi.callees = fi.callees[:0]
		seen := map[*types.Func]bool{}
		for _, site := range fi.sites {
			for _, c := range site.callees {
				if !seen[c] {
					seen[c] = true
					fi.callees = append(fi.callees, c)
				}
			}
		}
		sort.Slice(fi.callees, func(i, j int) bool { return objKey(fi.callees[i]) < objKey(fi.callees[j]) })
	}
}

// recvNamed returns the named type behind a method's receiver, or nil.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedConcrete(sig.Recv().Type())
}

// resolveSites walks fi's body (function literals included) and resolves
// every call expression.
func (g *callGraph) resolveSites(fi *funcInfo) {
	info := fi.unit.info
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := staticCallee(info, call)
		if obj == nil {
			return true
		}
		site := callSite{call: call}
		if recvInterface(obj) != nil {
			site.iface = true
			site.chaCallees = append([]*types.Func{obj}, g.implementations(obj)...)
		} else {
			site.chaCallees = []*types.Func{obj}
		}
		site.callees = site.chaCallees // refineRTA narrows interface sites
		fi.sites = append(fi.sites, site)
		return true
	})
}

// staticCallee resolves a call expression to the function or method
// object it names, or nil for builtins, conversions, and function-value
// calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// recvInterface returns the interface a method belongs to, or nil for
// functions and concrete methods.
func recvInterface(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implementations returns the concrete program methods an interface
// method call may dispatch to, in deterministic order.
func (g *callGraph) implementations(m *types.Func) []*types.Func {
	if impls, ok := g.implCache[m]; ok {
		return impls
	}
	iface := recvInterface(m)
	var impls []*types.Func
	if iface != nil {
		for _, named := range g.named {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok && fn != nil {
				impls = append(impls, fn)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return objKey(impls[i]) < objKey(impls[j]) })
	g.implCache[m] = impls
	return impls
}

// reaches reports whether any function satisfying target is reachable
// from start. Traversal descends into a callee only when through(callee)
// is true (and the callee has a body in the program); target is tested on
// every resolved callee regardless.
func (g *callGraph) reaches(start *types.Func, target, through func(*types.Func) bool) bool {
	found := false
	g.walk(start, through, func(callee *types.Func, _ *funcInfo, _ callSite) {
		if target(callee) {
			found = true
		}
	})
	return found
}

// walk traverses the call graph from start, invoking visit for every
// (callee, calling function, call site) triple encountered. Traversal
// descends into callees with bodies for which through returns true.
// Each function is expanded at most once.
func (g *callGraph) walk(start *types.Func, through func(*types.Func) bool, visit func(callee *types.Func, from *funcInfo, site callSite)) {
	seen := map[*types.Func]bool{start: true}
	queue := []*types.Func{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fi := g.funcs[cur]
		if fi == nil {
			continue
		}
		for _, site := range fi.sites {
			for _, callee := range site.callees {
				visit(callee, fi, site)
				if seen[callee] || !through(callee) {
					continue
				}
				seen[callee] = true
				queue = append(queue, callee)
			}
		}
	}
}

// objKey is a stable, universe-independent identifier for a function,
// method, type, or variable: pkgpath.(Recv.)Name.
func objKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if name := recvTypeName(sig.Recv().Type()); name != "" {
				return fmt.Sprintf("%s.%s.%s", pkg, name, fn.Name())
			}
		}
	}
	return pkg + "." + obj.Name()
}

// recvTypeName names a receiver type, stripping any pointer.
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "" // interface method; key by name only
	}
	return ""
}

// shortName renders an object as pkgname.Name for diagnostics.
func shortName(obj types.Object) string {
	if obj == nil {
		return "?"
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// isChargeFunc reports whether fn is the cost model's charge entry point:
// vclock.Charge, (*vclock.Tracker).Charge, or any other function of the
// vclock package that records service time.
func isChargeFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/vclock") {
		return false
	}
	return fn.Name() == "Charge" || fn.Name() == "Fanout"
}
