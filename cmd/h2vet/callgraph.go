package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// callGraph is a CHA-style (class-hierarchy analysis) call graph over the
// program's shared typed universe. Static calls resolve to their exact
// callee; calls through an interface method expand to every concrete
// method of a program type implementing that interface. Calls through
// plain function values are unresolvable and omitted — the lockcheck rule
// independently bans invoking those under a lock, so the lock analyzers
// lose nothing.
//
// Function literals have no *types.Func of their own; their call sites
// are attributed to the enclosing declared function, which matches how
// facts should flow (a retry wrapper's `func() { inner.Get(...) }` is the
// wrapper method delegating).
type callGraph struct {
	prog  *Program
	funcs map[*types.Func]*funcInfo
	named []*types.Named // concrete named types declared in the program

	implCache map[*types.Func][]*types.Func // interface method -> implementations
}

// funcInfo is one call-graph node: a declared function or method with a
// body in the program.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	unit *unit
	// sites lists the function's call sites in source order with their
	// resolved callees (CHA-expanded for interface calls).
	sites []callSite
	// callees is the deduplicated, deterministically ordered union of all
	// sites' callees.
	callees []*types.Func
}

// callSite is one call expression and the callees it may reach.
type callSite struct {
	call    *ast.CallExpr
	iface   bool // resolved through an interface method
	callees []*types.Func
}

// buildCallGraph indexes every declared function in the program's source
// units and resolves each call site.
func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{
		prog:      prog,
		funcs:     map[*types.Func]*funcInfo{},
		implCache: map[*types.Func][]*types.Func{},
	}
	// Pass 1: collect named types and function declarations.
	for _, u := range prog.source {
		for _, f := range u.files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					if obj, ok := u.info.Defs[d.Name].(*types.Func); ok && obj != nil {
						g.funcs[obj] = &funcInfo{obj: obj, decl: d, unit: u}
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok || ts.Assign.IsValid() { // skip aliases
							continue
						}
						tn, ok := u.info.Defs[ts.Name].(*types.TypeName)
						if !ok || tn == nil {
							continue
						}
						if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
							g.named = append(g.named, named)
						}
					}
				}
			}
		}
	}
	sort.Slice(g.named, func(i, j int) bool {
		return objKey(g.named[i].Obj()) < objKey(g.named[j].Obj())
	})
	// Pass 2: resolve call sites.
	for _, fi := range g.funcs {
		g.resolveSites(fi)
	}
	return g
}

// resolveSites walks fi's body (function literals included) and resolves
// every call expression.
func (g *callGraph) resolveSites(fi *funcInfo) {
	info := fi.unit.info
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := staticCallee(info, call)
		if obj == nil {
			return true
		}
		site := callSite{call: call}
		if recvInterface(obj) != nil {
			site.iface = true
			site.callees = append([]*types.Func{obj}, g.implementations(obj)...)
		} else {
			site.callees = []*types.Func{obj}
		}
		fi.sites = append(fi.sites, site)
		return true
	})
	seen := map[*types.Func]bool{}
	for _, site := range fi.sites {
		for _, c := range site.callees {
			if !seen[c] {
				seen[c] = true
				fi.callees = append(fi.callees, c)
			}
		}
	}
	sort.Slice(fi.callees, func(i, j int) bool { return objKey(fi.callees[i]) < objKey(fi.callees[j]) })
}

// staticCallee resolves a call expression to the function or method
// object it names, or nil for builtins, conversions, and function-value
// calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// recvInterface returns the interface a method belongs to, or nil for
// functions and concrete methods.
func recvInterface(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implementations returns the concrete program methods an interface
// method call may dispatch to, in deterministic order.
func (g *callGraph) implementations(m *types.Func) []*types.Func {
	if impls, ok := g.implCache[m]; ok {
		return impls
	}
	iface := recvInterface(m)
	var impls []*types.Func
	if iface != nil {
		for _, named := range g.named {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok && fn != nil {
				impls = append(impls, fn)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return objKey(impls[i]) < objKey(impls[j]) })
	g.implCache[m] = impls
	return impls
}

// reaches reports whether any function satisfying target is reachable
// from start. Traversal descends into a callee only when through(callee)
// is true (and the callee has a body in the program); target is tested on
// every resolved callee regardless.
func (g *callGraph) reaches(start *types.Func, target, through func(*types.Func) bool) bool {
	found := false
	g.walk(start, through, func(callee *types.Func, _ *funcInfo, _ callSite) {
		if target(callee) {
			found = true
		}
	})
	return found
}

// walk traverses the call graph from start, invoking visit for every
// (callee, calling function, call site) triple encountered. Traversal
// descends into callees with bodies for which through returns true.
// Each function is expanded at most once.
func (g *callGraph) walk(start *types.Func, through func(*types.Func) bool, visit func(callee *types.Func, from *funcInfo, site callSite)) {
	seen := map[*types.Func]bool{start: true}
	queue := []*types.Func{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fi := g.funcs[cur]
		if fi == nil {
			continue
		}
		for _, site := range fi.sites {
			for _, callee := range site.callees {
				visit(callee, fi, site)
				if seen[callee] || !through(callee) {
					continue
				}
				seen[callee] = true
				queue = append(queue, callee)
			}
		}
	}
}

// objKey is a stable, universe-independent identifier for a function,
// method, type, or variable: pkgpath.(Recv.)Name.
func objKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if name := recvTypeName(sig.Recv().Type()); name != "" {
				return fmt.Sprintf("%s.%s.%s", pkg, name, fn.Name())
			}
		}
	}
	return pkg + "." + obj.Name()
}

// recvTypeName names a receiver type, stripping any pointer.
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "" // interface method; key by name only
	}
	return ""
}

// shortName renders an object as pkgname.Name for diagnostics.
func shortName(obj types.Object) string {
	if obj == nil {
		return "?"
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// isChargeFunc reports whether fn is the cost model's charge entry point:
// vclock.Charge, (*vclock.Tracker).Charge, or any other function of the
// vclock package that records service time.
func isChargeFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/vclock") {
		return false
	}
	return fn.Name() == "Charge" || fn.Name() == "Fanout"
}
