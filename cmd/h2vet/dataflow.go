package main

// Hand-rolled dataflow layer backing the v4 rules (poolcheck, ctxcheck,
// atomiccheck). The repo is stdlib-only, so instead of lowering to
// golang.org/x/tools/go/ssa this file provides the two pieces those rules
// actually need, built directly over go/ast + go/types:
//
//   - a per-function control-flow graph of basic blocks (funcCFG), precise
//     enough for "on every non-error path" questions: if/for/range/switch/
//     type-switch/select, labeled break/continue, returns, and terminating
//     calls (panic, os.Exit, log.Fatal*, testing's t.Fatal*) all shape the
//     graph; goto conservatively terminates its path;
//   - a def-use alias pass (aliasSet) that tracks which local variables
//     may refer to the same backing object as a root value, through the
//     alias-creating operations this codebase uses: copies, dereferences,
//     address-taking, indexing, slicing, type assertions, and append-like
//     calls (a call is append-like when the result type is identical to an
//     aliased argument's type — append, NameRing.AppendAll, and friends).
//     Field selection and byte-copying calls do not propagate, so
//     `buf = strconv.AppendQuote(buf, t.Name)` does not taint buf.
//
// Both are per-declared-function (function literals are part of their
// enclosing declaration's graph only where noted); that matches the
// pool/context disciplines being function-scoped contracts.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cfgBlock is one basic block: statements that execute in sequence, the
// blocks control may flow to next, and how the block terminates.
type cfgBlock struct {
	nodes []ast.Stmt
	succs []*cfgBlock
	ret   *ast.ReturnStmt // set when the block ends in a return
	dies  bool            // ends in panic/os.Exit/log.Fatal/t.Fatal — not a normal exit
}

// funcCFG is the control-flow graph of one function body plus the defer
// list (deferred calls run on every exit path, so rules treat them as
// path-independent).
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // virtual; returns and fall-off-the-end link here
	blocks []*cfgBlock
	defers []*ast.CallExpr
}

type cfgBuilder struct {
	g    *funcCFG
	info *types.Info
	// break/continue targets, innermost last; label "" is the unlabeled
	// innermost target.
	breaks []cfgTarget
	conts  []cfgTarget
}

type cfgTarget struct {
	label string
	block *cfgBlock
}

// buildCFG builds the control-flow graph for one function body. Nested
// function literals are opaque statements here: they run on their own
// activation (or goroutine), so their bodies get their own graphs.
func buildCFG(info *types.Info, body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, info: info}
	b.g.exit = b.newBlock()
	b.g.entry = b.newBlock()
	last := b.stmts(body.List, b.g.entry)
	if last != nil {
		b.link(last, b.g.exit) // fall off the end: implicit return
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// stmts threads a statement list through cur, returning the live block
// after the list (nil when every path terminated).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminator; give it a detached block so
			// its statements are still recorded for position queries.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// target resolves a break/continue to its block; "" matches the
// innermost target.
func target(stack []cfgTarget, label string) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.LabeledStmt:
		return b.labeled(s.Label.Name, s.Stmt, cur)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		cur.ret = s
		b.link(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		cur.nodes = append(cur.nodes, s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := target(b.breaks, label); t != nil {
				b.link(cur, t)
			}
			return nil
		case token.CONTINUE:
			if t := target(b.conts, label); t != nil {
				b.link(cur, t)
			}
			return nil
		case token.GOTO:
			// Conservative: the jump target is unknown at this layer, so
			// the path neither reaches the exit nor continues here.
			cur.dies = true
			b.link(cur, b.g.exit)
			return nil
		}
		return cur // FALLTHROUGH: handled by the switch construction

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.nodes = append(cur.nodes, &ast.ExprStmt{X: s.Cond})
		after := b.newBlock()
		thenB := b.newBlock()
		b.link(cur, thenB)
		if end := b.stmts(s.Body.List, thenB); end != nil {
			b.link(end, after)
		}
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(cur, elseB)
			if end := b.stmt(s.Else, elseB); end != nil {
				b.link(end, after)
			}
		} else {
			b.link(cur, after)
		}
		return after

	case *ast.ForStmt:
		return b.loop(s, "", cur)

	case *ast.RangeStmt:
		return b.rangeLoop(s, "", cur)

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, &ast.ExprStmt{X: s.Tag})
		}
		return b.cases(s.Body, cur, "")

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.cases(s.Body, cur, "")

	case *ast.SelectStmt:
		return b.selectStmt(s, cur, "")

	case *ast.DeferStmt:
		cur.nodes = append(cur.nodes, s)
		b.g.defers = append(b.g.defers, s.Call)
		return cur

	default:
		cur.nodes = append(cur.nodes, s)
		if stmtDies(b.info, s) {
			cur.dies = true
			b.link(cur, b.g.exit)
			return nil
		}
		return cur
	}
}

// labeled builds a labeled loop/switch/select so labeled break/continue
// resolve to it; other labeled statements just pass through.
func (b *cfgBuilder) labeled(label string, s ast.Stmt, cur *cfgBlock) *cfgBlock {
	switch s := s.(type) {
	case *ast.ForStmt:
		return b.loop(s, label, cur)
	case *ast.RangeStmt:
		return b.rangeLoop(s, label, cur)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// break LABEL targets the after block; reuse the unlabeled paths
		// by pushing the label onto the break stack around them.
		after := b.newBlock()
		b.breaks = append(b.breaks, cfgTarget{label: label, block: after})
		end := b.stmt(s, cur)
		b.breaks = b.breaks[:len(b.breaks)-1]
		if end != nil {
			b.link(end, after)
		}
		return after
	default:
		return b.stmt(s, cur)
	}
}

func (b *cfgBuilder) loop(s *ast.ForStmt, label string, cur *cfgBlock) *cfgBlock {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	head := b.newBlock()
	after := b.newBlock()
	b.link(cur, head)
	if s.Cond != nil {
		head.nodes = append(head.nodes, &ast.ExprStmt{X: s.Cond})
		b.link(head, after) // condition may be false on entry
	}
	body := b.newBlock()
	b.link(head, body)
	b.breaks = append(b.breaks, cfgTarget{label: "", block: after}, cfgTarget{label: label, block: after})
	b.conts = append(b.conts, cfgTarget{label: "", block: head}, cfgTarget{label: label, block: head})
	end := b.stmts(s.Body.List, body)
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.conts = b.conts[:len(b.conts)-2]
	if end != nil {
		if s.Post != nil {
			end = b.stmt(s.Post, end)
		}
		if end != nil {
			b.link(end, head)
		}
	}
	return after
}

func (b *cfgBuilder) rangeLoop(s *ast.RangeStmt, label string, cur *cfgBlock) *cfgBlock {
	head := b.newBlock()
	after := b.newBlock()
	b.link(cur, head)
	head.nodes = append(head.nodes, &ast.ExprStmt{X: s.X})
	b.link(head, after) // ranges may be empty (or the channel closed)
	body := b.newBlock()
	b.link(head, body)
	b.breaks = append(b.breaks, cfgTarget{label: "", block: after}, cfgTarget{label: label, block: after})
	b.conts = append(b.conts, cfgTarget{label: "", block: head}, cfgTarget{label: label, block: head})
	end := b.stmts(s.Body.List, body)
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.conts = b.conts[:len(b.conts)-2]
	if end != nil {
		b.link(end, head)
	}
	return after
}

// cases builds switch/type-switch clause bodies. Fallthrough links one
// clause's end to the next clause's body.
func (b *cfgBuilder) cases(body *ast.BlockStmt, cur *cfgBlock, label string) *cfgBlock {
	after := b.newBlock()
	b.breaks = append(b.breaks, cfgTarget{label: "", block: after})
	if label != "" {
		b.breaks = append(b.breaks, cfgTarget{label: label, block: after})
	}
	clauseBlocks := make([]*cfgBlock, 0, len(body.List))
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauseBlocks = append(clauseBlocks, b.newBlock())
	}
	i := 0
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := clauseBlocks[i]
		b.link(cur, blk)
		end := b.stmts(cc.Body, blk)
		if end != nil {
			if ft := fallsThrough(cc.Body); ft && i+1 < len(clauseBlocks) {
				b.link(end, clauseBlocks[i+1])
			} else {
				b.link(end, after)
			}
		}
		i++
	}
	if !hasDefault {
		b.link(cur, after) // no clause may match
	}
	if label != "" {
		b.breaks = b.breaks[:len(b.breaks)-1]
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	return after
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, cur *cfgBlock, label string) *cfgBlock {
	after := b.newBlock()
	b.breaks = append(b.breaks, cfgTarget{label: "", block: after})
	if label != "" {
		b.breaks = append(b.breaks, cfgTarget{label: label, block: after})
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.link(cur, blk)
		if cc.Comm != nil {
			blk.nodes = append(blk.nodes, cc.Comm)
		}
		if end := b.stmts(cc.Body, blk); end != nil {
			b.link(end, after)
		}
	}
	if label != "" {
		b.breaks = b.breaks[:len(b.breaks)-1]
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	return after
}

// stmtDies reports whether a statement unconditionally stops normal
// control flow: panic, os.Exit, log.Fatal*, runtime.Goexit, or a
// testing Fatal/Fatalf/FailNow/Skip* call. Those paths are never
// "forgot the cleanup" paths, so dataflow rules exempt them.
func stmtDies(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isFunc := info.Uses[fun]; !isFunc { // the builtin, not a shadow
				return true
			}
		}
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

// errorReturn reports whether a return statement leaves on an error
// path: the function's last result is an error and the returned
// expression for it is not the nil literal. Naked returns count as
// success paths (the repo's style names no error results).
func errorReturn(info *types.Info, ret *ast.ReturnStmt) bool {
	if ret == nil || len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	tv, ok := info.Types[last]
	if !ok || tv.Type == nil {
		return false
	}
	if !types.Identical(tv.Type, types.Universe.Lookup("error").Type()) {
		named, okN := tv.Type.(*types.Named)
		if !okN || named.Obj().Name() != "error" {
			return false
		}
	}
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// aliasSet tracks the local variables that may alias one root value
// inside one declared function (nested literals included — captures
// alias too).
type aliasSet struct {
	info *types.Info
	vars map[*types.Var]bool
}

// newAliasSet seeds an alias set with the root variable and iterates the
// function's assignments to a fixpoint.
func newAliasSet(info *types.Info, body ast.Node, root *types.Var) *aliasSet {
	as := &aliasSet{info: info, vars: map[*types.Var]bool{root: true}}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) == 0 {
				return true
			}
			// Pair LHS/RHS positionally; multi-value calls assign all LHS
			// from one RHS, and a call result never aliases under the
			// same-type rule unless checked explicitly below.
			for i, lhs := range assign.Lhs {
				var rhs ast.Expr
				if len(assign.Rhs) == len(assign.Lhs) {
					rhs = assign.Rhs[i]
				} else {
					rhs = assign.Rhs[0]
				}
				if !as.aliases(rhs) {
					continue
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj, _ := as.info.ObjectOf(id).(*types.Var)
				if obj != nil && !as.vars[obj] {
					as.vars[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return as
}

// aliases reports whether evaluating e may yield a value sharing the
// root's backing object. A value whose type holds no pointers is a
// scalar copy (buf[0] of a pooled *[64]int is an int) and cannot alias,
// no matter what it was read from — unless its address is what flows on
// (&buf[0] does point into the pooled object; see aliasesLoc).
func (as *aliasSet) aliases(e ast.Expr) bool {
	if tv, ok := as.info.Types[ast.Unparen(e)]; ok && tv.Type != nil && !holdsPointers(tv.Type, nil) {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj, _ := as.info.ObjectOf(e).(*types.Var)
		return obj != nil && as.vars[obj]
	case *ast.UnaryExpr:
		return e.Op == token.AND && as.aliasesLoc(e.X)
	case *ast.StarExpr:
		return as.aliases(e.X)
	case *ast.IndexExpr:
		return as.aliases(e.X)
	case *ast.SliceExpr:
		return as.aliases(e.X)
	case *ast.TypeAssertExpr:
		return as.aliases(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if as.aliases(elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// Append-like: the result aliases an argument when the static
		// result type is identical to that aliased argument's type
		// (append, AppendAll, re-slicing helpers). Byte-copying calls
		// (strconv.AppendQuote(buf, t.Name)) have a non-identical aliased
		// argument type and do not propagate.
		resTV, ok := as.info.Types[e]
		if !ok || resTV.Type == nil {
			return false
		}
		for _, arg := range e.Args {
			if !as.aliases(arg) {
				continue
			}
			argTV, ok := as.info.Types[ast.Unparen(arg)]
			if ok && argTV.Type != nil && types.Identical(argTV.Type, resTV.Type) {
				return true
			}
		}
		return false
	}
	return false
}

// aliasesLoc reports whether the storage location e denotes lives inside
// the root's backing object — the address-of case, where the scalar-copy
// exemption of aliases does not apply (&buf[0] points into the pool).
func (as *aliasSet) aliasesLoc(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj, _ := as.info.ObjectOf(e).(*types.Var)
		return obj != nil && as.vars[obj]
	case *ast.IndexExpr:
		return as.aliasesLoc(e.X) || as.aliases(e.X)
	case *ast.SelectorExpr:
		return as.aliasesLoc(e.X) || as.aliases(e.X)
	case *ast.StarExpr:
		return as.aliases(e.X)
	}
	return as.aliases(e)
}
