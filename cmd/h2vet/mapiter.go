package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapiterAnalyzer flags order-sensitive consumption of Go's randomized
// map iteration. Two shapes are diagnosed inside `for ... range m` where
// m is a map:
//
//  1. append to a slice declared outside the loop, with no sort of that
//     slice later in the same function — the slice's order then depends
//     on map hash seeding (nondeterministic figures, gossip fan-out);
//  2. a direct order-sensitive sink in the loop body: a call whose name
//     starts with Encode/Marshal/Hash/Sum/Write/Broadcast/Send/Fprint,
//     or a channel send — no later sort can fix in-loop emission order.
//
// _test.go files are exempt; assertion order rarely feeds figures.
var mapiterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "no order-sensitive use of map iteration without an intervening sort",
	Run:  runMapiter,
}

var sinkPrefixes = []string{"Encode", "Marshal", "Hash", "Sum", "Write", "Broadcast", "Send", "Fprint"}

func runMapiter(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, body := range funcBodies(f) {
			p.mapiterFunc(body)
		}
	}
}

func (p *Pass) mapiterFunc(body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		p.checkMapRange(body, rng)
		return true
	})
}

func (p *Pass) checkMapRange(fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	// Shape 2: order-sensitive sinks directly inside the loop body.
	inspectShallow(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside map iteration over %s; delivery order is nondeterministic", rangeSubject(rng))
		case *ast.CallExpr:
			name := calleeName(n)
			for _, prefix := range sinkPrefixes {
				if strings.HasPrefix(name, prefix) {
					p.Reportf(n.Pos(), "call to %s inside map iteration over %s; emission order is nondeterministic, iterate sorted keys", name, rangeSubject(rng))
					break
				}
			}
		}
		return true
	})

	// Shape 1: appends to slices that outlive the loop.
	type appendTarget struct {
		text string
		pos  token.Pos
	}
	var targets []appendTarget
	inspectShallow(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != len(assign.Lhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || calleeName(call) != "append" || len(call.Args) == 0 {
				continue
			}
			lhsText := exprText(assign.Lhs[i])
			if lhsText == "" || lhsText != exprText(call.Args[0]) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := p.Info.ObjectOf(id); obj != nil && rng.Pos() <= obj.Pos() && obj.Pos() < rng.End() {
					continue // slice scoped to the loop body; order dies with it
				}
			}
			targets = append(targets, appendTarget{text: lhsText, pos: assign.Pos()})
		}
		return true
	})
	for _, tgt := range targets {
		if p.sortedAfter(fnBody, rng, tgt.text) {
			continue
		}
		p.Reportf(tgt.pos, "append to %s in map iteration order over %s with no later sort; sort %s or iterate sorted keys", tgt.text, rangeSubject(rng), tgt.text)
	}
}

// sortedAfter reports whether a sort call mentioning target appears in
// the function after the range loop: a call into package sort or slices,
// or any callee whose name contains "sort".
func (p *Pass) sortedAfter(fnBody *ast.BlockStmt, rng *ast.RangeStmt, target string) bool {
	found := false
	inspectShallow(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if e, ok := a.(ast.Expr); ok && exprText(e) == target {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				found = true
				break
			}
		}
		return true
	})
	return found
}

func isSortCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	if strings.Contains(strings.ToLower(name), "sort") {
		return true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
			return true
		}
	}
	return false
}

// rangeSubject names what is being ranged over, for diagnostics.
func rangeSubject(rng *ast.RangeStmt) string {
	if s := exprText(rng.X); s != "" {
		return s
	}
	return "map"
}
