package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// leakcheckAnalyzer finds `go` statements whose goroutine has no bounded
// exit. A goroutine is leak-free when every loop it can spin in has some
// way out — a return, a break that actually targets the loop, or a loop
// condition/range that terminates. The classic leak shapes it catches:
//
//   - `for { select { case <-notify: ... case <-ticker.C: ... } }` with
//     no ctx.Done/closed-channel case: the goroutine outlives its owner;
//   - `for range ticker.C`: ticker channels are never closed, so the
//     range never ends;
//   - `select { case <-done: break }` inside a loop: break exits the
//     select, not the loop — the goroutine keeps spinning.
//
// The spawned function is resolved through the call graph (`go b.Run(ctx)`
// analyzes Run; `go func() { ... }()` analyzes the literal), and the walk
// continues through transitive callees so a leak hidden one helper down
// is still attributed to the `go` statement that owns it. Loops inside a
// nested go-launched literal belong to that literal's own `go` statement
// and are reported there, not at the outer spawn.
var leakcheckAnalyzer = &Analyzer{
	Name:       "leakcheck",
	Doc:        "every goroutine launched by a go statement has a bounded exit from its loops",
	RunProgram: runLeakcheck,
}

// leakLoop is one loop that can never be left: an unconditional `for`
// with no return/loop-break, or a range over a time.Ticker channel.
type leakLoop struct {
	pos         token.Pos
	ticker      bool // for-range over time.Ticker.C
	selectBreak bool // contains a break that only exits a nested select/switch
}

func runLeakcheck(p *ProgramPass) {
	g := p.Prog.callGraph()
	fns := make([]*types.Func, 0, len(g.funcs))
	for fn := range g.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return objKey(fns[i]) < objKey(fns[j]) })

	loopCache := map[*types.Func][]leakLoop{}
	loopsOf := func(fn *types.Func) []leakLoop {
		if loops, ok := loopCache[fn]; ok {
			return loops
		}
		loops := leakLoops(g.funcs[fn].unit.info, g.funcs[fn].decl.Body)
		loopCache[fn] = loops
		return loops
	}

	for _, fn := range fns {
		fi := g.funcs[fn]
		info := fi.unit.info
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			gostmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			seenLoop := map[token.Pos]bool{}
			report := func(loop leakLoop) {
				if seenLoop[loop.pos] {
					return
				}
				seenLoop[loop.pos] = true
				lp := p.Prog.fset.Position(loop.pos)
				switch {
				case loop.ticker:
					p.Reportf(gostmt.Pos(), "goroutine never exits: the for-range over a time.Ticker channel at %s:%d never terminates (tickers are never closed); select on <-ctx.Done() alongside <-ticker.C", lp.Filename, lp.Line)
				case loop.selectBreak:
					p.Reportf(gostmt.Pos(), "goroutine never exits: the unconditional loop at %s:%d has no return or loop break (its break exits the enclosing select/switch, not the loop); return on <-ctx.Done() or a closed channel", lp.Filename, lp.Line)
				default:
					p.Reportf(gostmt.Pos(), "goroutine never exits: the unconditional loop at %s:%d has no return or loop break; return on <-ctx.Done(), exit on a closed channel, or bound the loop", lp.Filename, lp.Line)
				}
			}

			// Roots: the literal's own body, or the resolved callees.
			var queue []*types.Func
			seenFn := map[*types.Func]bool{}
			enqueue := func(callee *types.Func) {
				if g.funcs[callee] != nil && !seenFn[callee] {
					seenFn[callee] = true
					queue = append(queue, callee)
				}
			}
			if lit, ok := gostmt.Call.Fun.(*ast.FuncLit); ok {
				for _, loop := range leakLoops(info, lit.Body) {
					report(loop)
				}
				for _, site := range fi.sites {
					if site.call.Pos() < lit.Pos() || site.call.Pos() > lit.End() {
						continue
					}
					for _, callee := range site.callees {
						enqueue(callee)
					}
				}
			} else {
				for _, callee := range g.calleesOf(info, gostmt.Call) {
					enqueue(callee)
				}
			}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for _, loop := range loopsOf(cur) {
					report(loop)
				}
				cfi := g.funcs[cur]
				for _, site := range cfi.sites {
					// A call site inside a go-launched literal belongs to that
					// literal's own goroutine; its loops are reported at the
					// inner go statement.
					if insideGoLit(cfi.decl.Body, site.call.Pos()) {
						continue
					}
					for _, callee := range site.callees {
						enqueue(callee)
					}
				}
			}
			return true
		})
	}
}

// insideGoLit reports whether pos falls inside a function literal that
// body launches directly with a `go` statement.
func insideGoLit(body *ast.BlockStmt, pos token.Pos) bool {
	inside := false
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if lit.Pos() <= pos && pos <= lit.End() {
					inside = true
				}
			}
		}
		return !inside
	})
	return inside
}

// leakLoops finds the unbounded no-exit loops directly in body. It does
// not descend into go-launched function literals (their loops belong to
// the inner goroutine) but does scan ordinary nested literals, which run
// on the same goroutine in the common inline case.
func leakLoops(info *types.Info, body ast.Node) []leakLoop {
	labels := map[ast.Node]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		if l, ok := n.(*ast.LabeledStmt); ok {
			labels[l.Stmt] = l.Label.Name
		}
		return true
	})
	var loops []leakLoop
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if _, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
				return false
			}
		}
		var loopBody *ast.BlockStmt
		ticker := false
		switch stmt := n.(type) {
		case *ast.ForStmt:
			if stmt.Cond != nil {
				return true
			}
			loopBody = stmt.Body
		case *ast.RangeStmt:
			if !isTickerChan(info, stmt.X) {
				return true
			}
			loopBody = stmt.Body
			ticker = true
		default:
			return true
		}
		hasExit, selectBreak := loopExits(loopBody, labels[n])
		if !hasExit {
			loops = append(loops, leakLoop{pos: n.Pos(), ticker: ticker, selectBreak: selectBreak})
		}
		return true
	})
	return loops
}

// isTickerChan reports whether e is the C channel of a time.Ticker.
func isTickerChan(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "C" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Ticker"
}

// loopExits reports whether the loop with the given body can be left: a
// return, a goto, or a break that targets this loop (unlabeled at depth
// zero, or labeled with the loop's label). A break nested inside another
// for/select/switch only exits that construct; when that is the only
// break present, selectBreak is set so the diagnostic can call out the
// pitfall.
func loopExits(body *ast.BlockStmt, loopLabel string) (hasExit, selectBreak bool) {
	// Labels declared inside this loop body: a break targeting one of
	// them exits a nested construct, not this loop. A break targeting
	// any other label necessarily transfers control out of this loop.
	innerLabels := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if l, ok := n.(*ast.LabeledStmt); ok {
			innerLabels[l.Label.Name] = true
		}
		return true
	})
	var scanStmt func(s ast.Stmt, depth int)
	scanList := func(list []ast.Stmt, depth int) {
		for _, s := range list {
			scanStmt(s, depth)
		}
	}
	scanStmt = func(s ast.Stmt, depth int) {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			hasExit = true
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if s.Label != nil {
					if (loopLabel != "" && s.Label.Name == loopLabel) || !innerLabels[s.Label.Name] {
						hasExit = true
					} else {
						selectBreak = true
					}
				} else if depth == 0 {
					hasExit = true
				} else {
					selectBreak = true
				}
			case token.GOTO:
				hasExit = true // conservatively assume it leaves the loop
			}
		case *ast.BlockStmt:
			scanList(s.List, depth)
		case *ast.IfStmt:
			scanStmt(s.Body, depth)
			if s.Else != nil {
				scanStmt(s.Else, depth)
			}
		case *ast.ForStmt:
			scanStmt(s.Body, depth+1)
		case *ast.RangeStmt:
			scanStmt(s.Body, depth+1)
		case *ast.SwitchStmt:
			scanStmt(s.Body, depth+1)
		case *ast.TypeSwitchStmt:
			scanStmt(s.Body, depth+1)
		case *ast.SelectStmt:
			scanStmt(s.Body, depth+1)
		case *ast.CaseClause:
			scanList(s.Body, depth)
		case *ast.CommClause:
			scanList(s.Body, depth)
		case *ast.LabeledStmt:
			scanStmt(s.Stmt, depth)
		}
		// GoStmt/DeferStmt and function literals are other goroutines or
		// deferred frames; their statements cannot exit this loop.
	}
	scanList(body.List, 0)
	return hasExit, selectBreak
}
