package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// poolcheckAnalyzer turns the sync.Pool scratch idiom (PR 8's codec and
// middleware pools) from a golden-test convention into a checked
// contract. For every value obtained from a sync.Pool.Get inside a
// function scope:
//
//   - it must flow back to a Put on the same pool on every non-error
//     path: a deferred Put covers all paths, otherwise the control-flow
//     graph is walked and any path that reaches a success return (or
//     falls off the end) without passing a Put is a finding; paths that
//     return a non-nil error or die in panic/Fatal are exempt, because
//     the pool entry is merely lost there, never corrupted;
//   - when the pooled value holds pointers (strings, slices, maps, ...),
//     it must be cleared between Get and Put — builtin clear on the
//     scratch (or a derived slice) or a Reset method call — so a pooled
//     buffer cannot pin decoded strings against the garbage collector;
//   - neither the value nor anything aliasing it (tracked by the def-use
//     pass in dataflow.go) may escape the function: returning it, storing
//     it to a field or package variable, sending it on a channel, or
//     handing it to a goroutine lets the pool recycle memory that is
//     still referenced — and any use after a non-deferred Put is a
//     use-after-free against the pool.
//
// The analysis is per function scope: a scratch value that crosses a
// function boundary is exactly the ownership transfer the contract
// forbids.
var poolcheckAnalyzer = &Analyzer{
	Name:       "poolcheck",
	Doc:        "sync.Pool scratch is Put on every non-error path, cleared when it holds pointers, and never escapes",
	RunProgram: runPoolcheck,
}

// poolScope is one function scope being checked: a FuncDecl body or a
// FuncLit body (each runs on its own activation, so Get/Put pairing is
// judged per scope).
type poolScope struct {
	unit *unit
	body *ast.BlockStmt
	decl ast.Node // the FuncDecl or FuncLit, for alias scanning
}

func runPoolcheck(p *ProgramPass) {
	for _, u := range p.Prog.source {
		for _, f := range u.files {
			var scopes []poolScope
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						scopes = append(scopes, poolScope{unit: u, body: n.Body, decl: n})
					}
				case *ast.FuncLit:
					scopes = append(scopes, poolScope{unit: u, body: n.Body, decl: n})
				}
				return true
			})
			for _, sc := range scopes {
				checkPoolScope(p, sc)
			}
		}
	}
}

// poolGet is one tracked pool.Get binding in a scope.
type poolGet struct {
	pool    *types.Var // the sync.Pool variable
	poolStr string     // rendered receiver ("tupleScratch", "s.pool")
	call    *ast.CallExpr
	local   *types.Var // variable the Get result is bound to
}

func checkPoolScope(p *ProgramPass, sc poolScope) {
	info := sc.unit.info

	// Collect pool.Get bindings and pool.Put calls, shallow (nested
	// literals are their own scopes).
	var gets []poolGet
	boundGets := map[*ast.CallExpr]bool{}
	bindGet := func(lhs ast.Expr, rhs ast.Expr) {
		call, pool := poolGetCall(info, rhs)
		if call == nil {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		local, _ := info.ObjectOf(id).(*types.Var)
		if local == nil {
			return
		}
		boundGets[call] = true
		gets = append(gets, poolGet{pool: pool, poolStr: poolRecvText(call), call: call, local: local})
	}
	inspectShallow(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bindGet(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					bindGet(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	// Unbound Gets cannot be checked against their Put; that is itself a
	// contract violation.
	inspectShallow(sc.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c, _ := poolGetCall(info, call); c != nil && !boundGets[c] {
			p.Reportf(call.Pos(), "sync.Pool Get result is not bound to a variable; bind it so the matching Put (and the escape contract) is checkable")
		}
		return true
	})
	if len(gets) == 0 {
		return
	}

	cfg := buildCFG(info, sc.body)
	sort.Slice(gets, func(i, j int) bool { return gets[i].call.Pos() < gets[j].call.Pos() })
	for _, g := range gets {
		checkPoolGet(p, sc, cfg, g)
	}
}

// poolGetCall matches `<pool>.Get()` possibly wrapped in a type
// assertion or parens, returning the call and the pool variable.
func poolGetCall(info *types.Info, e ast.Expr) (*ast.CallExpr, *types.Var) {
	switch e := ast.Unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return poolGetCall(info, e.X)
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Get" || len(e.Args) != 0 {
			return nil, nil
		}
		if pool := poolVar(info, sel.X); pool != nil {
			return e, pool
		}
	}
	return nil, nil
}

// poolVar resolves an expression to the sync.Pool variable it denotes
// (package var, struct field, or local), or nil.
func poolVar(info *types.Info, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.ObjectOf(e)
	case *ast.SelectorExpr:
		if s := info.Selections[e]; s != nil {
			obj = s.Obj()
		} else {
			obj = info.ObjectOf(e.Sel)
		}
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v == nil {
		return nil
	}
	t := v.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool" {
		return v
	}
	return nil
}

// poolRecvText renders the Get call's receiver for diagnostics.
func poolRecvText(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := exprText(sel.X); s != "" {
			return s
		}
	}
	return "pool"
}

func checkPoolGet(p *ProgramPass, sc poolScope, cfg *funcCFG, g poolGet) {
	info := sc.unit.info
	fset := p.Prog.fset
	aliases := newAliasSet(info, sc.decl, g.local)

	// Put sites: direct statements in this scope, plus deferred calls
	// (directly or via a deferred literal).
	type putSite struct {
		stmt ast.Stmt
		pos  token.Pos
	}
	var puts []putSite
	deferred := false
	isPutCall := func(call *ast.CallExpr) bool {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
			return false
		}
		pv := poolVar(info, sel.X)
		if pv == nil {
			return false
		}
		if !aliases.aliases(call.Args[0]) {
			return false
		}
		if pv != g.pool {
			p.Reportf(call.Pos(), "scratch from %s.Get is returned to a different pool %s; cross-pool Put corrupts both pools' size classes", g.poolStr, poolRecvText(call))
			return false
		}
		return true
	}
	for _, dc := range cfg.defers {
		if isPutCall(dc) {
			deferred = true
		}
		if lit, ok := dc.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isPutCall(call) {
					deferred = true
				}
				return true
			})
		}
	}
	var lastPut token.Pos
	for _, blk := range cfg.blocks {
		for _, stmt := range blk.nodes {
			if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
				continue
			}
			found := false
			inspectShallow(stmt, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isPutCall(call) {
					found = true
				}
				return true
			})
			if found {
				puts = append(puts, putSite{stmt: stmt, pos: stmt.Pos()})
				if stmt.End() > lastPut {
					lastPut = stmt.End()
				}
			}
		}
	}

	// Clearing: pooled values holding pointers must be cleared (builtin
	// clear) or Reset between Get and Put, or the pool pins references.
	if kind, needs := poolNeedsClear(info, g); needs {
		cleared := false
		ast.Inspect(sc.decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "clear" && len(call.Args) == 1 && aliases.aliases(call.Args[0]) {
					cleared = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Reset" && aliases.aliases(fun.X) {
					cleared = true
				}
			}
			return true
		})
		if !cleared {
			p.Reportf(g.call.Pos(), "pooled %s holds pointers; clear it (or call Reset) between %s.Get and Put so the pool cannot pin references for the GC", kind, g.poolStr)
		}
	}

	// Escapes: anything aliasing the scratch leaving the function. A
	// return-escape also explains any missing Put on that path, so the
	// path check is skipped — one finding per root cause.
	returnEscape := reportEscapes(p, sc, aliases, g)

	// Use after a non-deferred Put: positional, which matches the
	// straight-line Put-then-return idiom this repo uses.
	if !deferred && lastPut.IsValid() {
		inspectShallow(sc.body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Pos() <= lastPut {
				return true
			}
			obj, _ := info.ObjectOf(id).(*types.Var)
			if obj != nil && aliases.vars[obj] {
				lp := fset.Position(lastPut)
				p.Reportf(id.Pos(), "pooled scratch %s used after %s.Put at %s:%d returned it; the pool may already have handed it to another goroutine", id.Name, g.poolStr, lp.Filename, lp.Line)
				return false
			}
			return true
		})
	}

	if deferred || returnEscape {
		return // deferred Put covers every path; a return-escape was reported
	}

	// Path check: every path from the Get to a success exit must pass a
	// Put statement.
	putStmt := map[ast.Stmt]bool{}
	for _, ps := range puts {
		putStmt[ps.stmt] = true
	}
	startBlk, startIdx := locateStmt(cfg, g.call.Pos())
	if startBlk == nil {
		return
	}
	type visitKey struct {
		blk *cfgBlock
		idx int
	}
	seen := map[visitKey]bool{}
	var leak *token.Position
	var walk func(blk *cfgBlock, idx int)
	walk = func(blk *cfgBlock, idx int) {
		if leak != nil || seen[visitKey{blk, idx}] {
			return
		}
		seen[visitKey{blk, idx}] = true
		for i := idx; i < len(blk.nodes); i++ {
			if putStmt[blk.nodes[i]] {
				return // this path is covered
			}
		}
		if blk.dies {
			return // panic/Fatal path: exempt
		}
		if blk.ret != nil {
			if errorReturn(info, blk.ret) {
				return // error path: exempt
			}
			pos := fset.Position(blk.ret.Pos())
			leak = &pos
			return
		}
		for _, succ := range blk.succs {
			if succ == cfg.exit {
				pos := fset.Position(sc.body.End())
				leak = &pos // fell off the end without a Put
				return
			}
			walk(succ, 0)
		}
	}
	walk(startBlk, startIdx)
	if leak != nil {
		if len(puts) == 0 {
			p.Reportf(g.call.Pos(), "scratch from %s.Get is never returned with %s.Put; the pool degrades to plain allocation (defer the Put at the Get site)", g.poolStr, g.poolStr)
		} else {
			p.Reportf(g.call.Pos(), "scratch from %s.Get is not returned on every non-error path: the path exiting at %s:%d misses %s.Put (defer the Put or cover every return)", g.poolStr, leak.Filename, leak.Line, g.poolStr)
		}
	}
}

// reportEscapes flags scratch aliases leaving the function scope, and
// reports whether any escape was via return (detected, whether or not an
// ignore directive suppressed the diagnostic).
func reportEscapes(p *ProgramPass, sc poolScope, aliases *aliasSet, g poolGet) bool {
	info := sc.unit.info
	returnEscape := false
	inspectShallow(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if aliases.aliases(res) {
					returnEscape = true
					p.Reportf(n.Pos(), "pooled scratch from %s.Get escapes via return; the pool may recycle it under the caller (copy it out, or do not pool it)", g.poolStr)
				}
			}
		case *ast.SendStmt:
			if aliases.aliases(n.Value) {
				p.Reportf(n.Pos(), "pooled scratch from %s.Get escapes via channel send; the receiver outlives the Put (copy it out first)", g.poolStr)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else {
					rhs = n.Rhs[0]
				}
				if !aliases.aliases(rhs) {
					continue
				}
				if sink := escapeSink(info, aliases, lhs); sink != "" {
					p.Reportf(n.Pos(), "pooled scratch from %s.Get escapes via store to %s; the reference outlives the function while the pool recycles the memory", g.poolStr, sink)
				}
			}
		case *ast.GoStmt:
			escapes := false
			for _, arg := range n.Call.Args {
				if aliases.aliases(arg) {
					escapes = true
				}
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(c ast.Node) bool {
					if id, ok := c.(*ast.Ident); ok {
						if obj, _ := info.ObjectOf(id).(*types.Var); obj != nil && aliases.vars[obj] {
							escapes = true
						}
					}
					return true
				})
			}
			if escapes {
				p.Reportf(n.Pos(), "pooled scratch from %s.Get is handed to a goroutine; the pool may recycle it concurrently (copy, or let the goroutine own its own Get/Put)", g.poolStr)
			}
		}
		return true
	})
	return returnEscape
}

// escapeSink classifies an assignment target that lets a scratch alias
// outlive the function: a package-level variable, a field of a foreign
// object, or a store through a foreign pointer. Stores into the scratch
// itself (*sp = ..., sp[i] = ...) are part of the idiom.
func escapeSink(info *types.Info, aliases *aliasSet, lhs ast.Expr) string {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj, _ := info.ObjectOf(lhs).(*types.Var)
		if obj != nil && !aliases.vars[obj] && obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return "package variable " + lhs.Name
		}
	case *ast.SelectorExpr:
		if !aliases.aliases(lhs.X) {
			if s := info.Selections[lhs]; s != nil && s.Kind() == types.FieldVal {
				return "field " + exprText(lhs)
			}
		}
	case *ast.StarExpr:
		if !aliases.aliases(lhs.X) {
			return "*" + exprText(lhs.X)
		}
	case *ast.IndexExpr:
		if !aliases.aliases(lhs.X) {
			if sel, ok := ast.Unparen(lhs.X).(*ast.SelectorExpr); ok {
				if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
					return "field " + exprText(sel)
				}
			}
		}
	}
	return ""
}

// poolNeedsClear decides whether the pooled value must be cleared before
// Put, and names its kind for the diagnostic. The pooled value is the
// static type of the Get binding, one pointer unwrapped (pooling *T is
// the allocation-free idiom): a slice or map whose contents hold
// pointers, or a struct with pointer-bearing fields, pins references
// when pooled dirty.
func poolNeedsClear(info *types.Info, g poolGet) (string, bool) {
	t := g.local.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	name := types.TypeString(g.local.Type(), func(p *types.Package) string { return p.Name() })
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if holdsPointers(u.Elem(), nil) {
			return name, true
		}
	case *types.Map:
		if holdsPointers(u.Key(), nil) || holdsPointers(u.Elem(), nil) {
			return name, true
		}
	case *types.Struct:
		if holdsPointers(u, nil) {
			return name, true
		}
	}
	return "", false
}

// holdsPointers reports whether values of t contain pointers the GC
// traces: strings, pointers, slices, maps, channels, funcs, interfaces,
// or aggregates containing them.
func holdsPointers(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsPointers(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsPointers(u.Elem(), seen)
	}
	return false
}

// locateStmt finds the block and node index containing pos.
func locateStmt(cfg *funcCFG, pos token.Pos) (*cfgBlock, int) {
	for _, blk := range cfg.blocks {
		for i, stmt := range blk.nodes {
			if stmt.Pos() <= pos && pos <= stmt.End() {
				return blk, i
			}
		}
	}
	return nil, 0
}

// poolKindName is kept for diagnostics symmetry with alloccheck naming.
var _ = strings.TrimSpace
var _ = fmt.Sprintf
