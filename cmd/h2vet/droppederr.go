package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// droppederrAnalyzer flags discarded error results from the calls whose
// failures silently corrupt simulated state: the internal/core codecs
// (Decode*/Encode*) and the objstore / cluster storage primitives
// (Put/Get/Delete). Two shapes are diagnosed:
//
//	n.Put(...)                 // expression statement, results dropped
//	v, _ := core.DecodeDir(b)  // error position assigned to _
//
// Only calls whose signature actually returns an error are considered,
// and Put/Get/Delete only count when the method is declared in
// internal/objstore or internal/cluster — pathdb.Get and friends return
// booleans, not errors, and stay exempt. Unlike the determinism rules
// this one covers _test.go files too: a test that drops a Put error can
// pass against a store that never stored anything.
var droppederrAnalyzer = &Analyzer{
	Name: "droppederr",
	Doc:  "no ignored errors from core codecs and objstore/cluster Put/Get/Delete",
	Run:  runDroppederr,
}

var storagePrimitives = map[string]bool{"Put": true, "Get": true, "Delete": true}

func runDroppederr(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := p.guardedCall(call); ok && p.errorResultIndex(call) >= 0 {
						p.Reportf(call.Pos(), "result of %s is discarded; check the error", name)
					}
				}
			case *ast.AssignStmt:
				p.checkAssignDrops(n)
			}
			return true
		})
	}
}

// checkAssignDrops flags `v, _ := guardedCall(...)` where _ sits in the
// error position.
func (p *Pass) checkAssignDrops(assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := p.guardedCall(call)
	if !ok {
		return
	}
	idx := p.errorResultIndex(call)
	if idx < 0 || idx >= len(assign.Lhs) {
		return
	}
	if id, ok := assign.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
		p.Reportf(assign.Lhs[idx].Pos(), "error result of %s is assigned to _; check the error", name)
	}
}

// guardedCall reports whether the call targets a guarded API, returning
// a printable name for diagnostics.
func (p *Pass) guardedCall(call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = p.Info.ObjectOf(fun.Sel)
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	name := fn.Name()
	switch {
	case strings.HasSuffix(pkg, "/internal/core") || pkg == "internal/core":
		if strings.HasPrefix(name, "Decode") || strings.HasPrefix(name, "Encode") {
			return "core." + name, true
		}
	case strings.HasSuffix(pkg, "/internal/objstore") || pkg == "internal/objstore":
		if storagePrimitives[name] {
			return "objstore " + name, true
		}
	case strings.HasSuffix(pkg, "/internal/cluster") || pkg == "internal/cluster":
		if storagePrimitives[name] {
			return "cluster " + name, true
		}
	}
	return "", false
}

// errorResultIndex returns the index of the last result of type error in
// the call's signature, or -1.
func (p *Pass) errorResultIndex(call *ast.CallExpr) int {
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return -1
	}
	for i := sig.Results().Len() - 1; i >= 0; i-- {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}
