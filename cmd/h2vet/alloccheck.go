package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// alloccheckAnalyzer budgets heap allocations on the simulator's hot
// paths. The hot-path set is computed from the call graph: everything
// reachable from an objstore.Store or objstore.Batcher primitive of a
// program type, from the NameRing codec/merge routines
// (core.Encode*/Decode*/Merged and the NameRing
// AppendAll/AppendLive/All/Live/Merge methods the pooled codecs are
// built on) and the MD5 ring placement methods
// (ring.Ring.Partition/Devices/PartitionDevices plus their
// *Append variants and the cached DeviceIDs), plus explicit
//
//	//h2vet:hotpath
//
// opt-ins on a function declaration. Inside hot functions it flags the
// per-operation allocation patterns that cap how big an n/m/d the bench
// sweeps can afford:
//
//   - fmt.Sprintf/fmt.Sprint/fmt.Errorf off the error path (returns and
//     branches that produce an error value are exempt);
//   - append in a loop growing a slice declared without capacity;
//   - string <-> []byte round-trip conversions ([]byte(string(b)));
//   - map allocations (literal or make) and composite literals inside
//     loops — one allocation per element is the classic encode/decode
//     regression.
//
// `h2vet -explain alloccheck` prints the computed hot-path set.
var alloccheckAnalyzer = &Analyzer{
	Name:       "alloccheck",
	Doc:        "hot-path functions (Store/Batcher/NameRing/placement reachable) avoid per-op heap allocation patterns",
	RunProgram: runAlloccheck,
}

// hotSet maps every hot-path function to the reason it is hot, with a
// deterministic iteration order.
type hotSet struct {
	reason map[*types.Func]string
	order  []*types.Func
}

// computeHotSet resolves the hot-path entry points and walks the call
// graph to closure.
func computeHotSet(prog *Program) *hotSet {
	g := prog.callGraph()
	hs := &hotSet{reason: map[*types.Func]string{}}
	add := func(fn *types.Func, reason string) {
		if fn == nil || g.funcs[fn] == nil {
			return
		}
		if _, ok := hs.reason[fn]; ok {
			return
		}
		hs.reason[fn] = reason
		hs.order = append(hs.order, fn)
	}

	// Store and Batcher primitives of every implementing program type.
	for _, spec := range []struct{ kind, name string }{
		{"objstore.Store primitive", "Store"},
		{"objstore.Batcher primitive", "Batcher"},
	} {
		iface := objstoreInterface(prog, spec.name)
		if iface == nil {
			continue
		}
		for _, named := range g.named {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
				if fn, ok := obj.(*types.Func); ok {
					add(fn, spec.kind)
				}
			}
		}
	}

	// NameRing codec and merge routines, including the append-into-
	// caller-buffer iteration APIs the pooled codecs are built on.
	if pkg := prog.lookupPackage("internal/core"); pkg != nil {
		names := pkg.Scope().Names()
		sort.Strings(names)
		for _, name := range names {
			if !strings.HasPrefix(name, "Encode") && !strings.HasPrefix(name, "Decode") && name != "Merged" {
				continue
			}
			if fn, ok := pkg.Scope().Lookup(name).(*types.Func); ok {
				add(fn, "NameRing codec/merge")
			}
		}
		if obj := pkg.Scope().Lookup("NameRing"); obj != nil {
			ptr := types.NewPointer(obj.Type())
			for _, name := range []string{"AppendAll", "AppendLive", "All", "Live", "Merge"} {
				m, _, _ := types.LookupFieldOrMethod(ptr, true, pkg, name)
				if fn, ok := m.(*types.Func); ok {
					add(fn, "NameRing codec/merge")
				}
			}
		}
		// Sharded-directory routing: ShardOf runs once per tuple on every
		// extent encode and every patch route; MergedExtents folds a whole
		// fan-in read.
		for _, name := range []string{"ShardOf", "MergedExtents"} {
			if fn, ok := pkg.Scope().Lookup(name).(*types.Func); ok {
				add(fn, "shard routing")
			}
		}
	}

	// MD5 ring placement, cached variants included.
	if pkg := prog.lookupPackage("internal/ring"); pkg != nil {
		if obj := pkg.Scope().Lookup("Ring"); obj != nil {
			ptr := types.NewPointer(obj.Type())
			for _, name := range []string{
				"Partition", "Devices", "DevicesAppend",
				"PartitionDevices", "PartitionDevicesAppend",
				"DeviceIDs", "DeviceIDsAppend",
			} {
				m, _, _ := types.LookupFieldOrMethod(ptr, true, pkg, name)
				if fn, ok := m.(*types.Func); ok {
					add(fn, "ring placement")
				}
			}
		}
	}

	// Explicit opt-ins.
	dirs := collectLineDirectives(prog.source, "hotpath")
	fns := make([]*types.Func, 0, len(g.funcs))
	for fn := range g.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return objKey(fns[i]) < objKey(fns[j]) })
	for _, fn := range fns {
		pos := prog.fset.Position(g.funcs[fn].decl.Pos())
		if _, ok := directiveFor(dirs, pos.Filename, pos.Line); ok {
			add(fn, "//h2vet:hotpath")
		}
	}

	// Closure over the call graph.
	queue := append([]*types.Func{}, hs.order...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range g.funcs[cur].callees {
			if g.funcs[callee] == nil {
				continue
			}
			if _, ok := hs.reason[callee]; ok {
				continue
			}
			root := hs.reason[cur]
			if !strings.HasPrefix(root, "reachable") {
				root = "reachable from " + shortName(cur)
			}
			hs.reason[callee] = root
			hs.order = append(hs.order, callee)
			queue = append(queue, callee)
		}
	}
	return hs
}

func runAlloccheck(p *ProgramPass) {
	g := p.Prog.callGraph()
	hs := computeHotSet(p.Prog)
	for _, fn := range hs.order {
		checkHotFunc(p, g.funcs[fn])
	}
}

// checkHotFunc scans one hot function for per-op allocation patterns.
func checkHotFunc(p *ProgramPass, fi *funcInfo) {
	info := fi.unit.info
	body := fi.decl.Body

	// Loop body ranges and error-path ranges, by position.
	type span struct{ start, end token.Pos }
	var loops, errPaths []span
	contains := func(spans []span, pos token.Pos) bool {
		for _, s := range spans {
			if s.start <= pos && pos <= s.end {
				return true
			}
		}
		return false
	}
	errorType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	isErrorExpr := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		return t != nil && types.Implements(t, errorType)
	}
	blockHasErrorReturn := func(n ast.Node) bool {
		has := false
		ast.Inspect(n, func(c ast.Node) bool {
			if ret, ok := c.(*ast.ReturnStmt); ok {
				for _, res := range ret.Results {
					if isErrorExpr(res) {
						has = true
					}
				}
			}
			return !has
		})
		return has
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.IfStmt:
			if blockHasErrorReturn(n.Body) {
				errPaths = append(errPaths, span{n.Body.Pos(), n.Body.End()})
			}
			if n.Else != nil && blockHasErrorReturn(n.Else) {
				errPaths = append(errPaths, span{n.Else.Pos(), n.Else.End()})
			}
		case *ast.CaseClause, *ast.CommClause:
			if blockHasErrorReturn(n) {
				errPaths = append(errPaths, span{n.Pos(), n.End()})
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isErrorExpr(res) {
					errPaths = append(errPaths, span{n.Pos(), n.End()})
					break
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				errPaths = append(errPaths, span{n.Pos(), n.End()})
			}
		}
		return true
	})

	// Local slice declarations without capacity, for the append rule.
	unsized := map[types.Object]bool{}
	declPos := map[types.Object]token.Pos{}
	recordDecl := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		declPos[obj] = id.Pos()
		switch rhs := ast.Unparen(rhs).(type) {
		case nil:
			unsized[obj] = true // var x []T
		case *ast.CompositeLit:
			unsized[obj] = true // x := []T{...}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "make" && len(rhs.Args) < 3 {
				unsized[obj] = true // make([]T, n) without cap
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					recordDecl(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, id := range n.Names {
					recordDecl(id, nil)
				}
			} else if len(n.Values) == len(n.Names) {
				for i, id := range n.Names {
					recordDecl(id, n.Values[i])
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// fmt.Sprintf/Sprint/Sprintln/Errorf off the error path.
			if name := calleeName(n); name == "Sprintf" || name == "Sprint" || name == "Sprintln" || name == "Errorf" {
				if pkgQual(info, n) == "fmt" && !contains(errPaths, n.Pos()) {
					p.Reportf(n.Pos(), "fmt.%s allocates per call on the hot path; build the value with strconv/append or move it to an error path", name)
				}
			}
			// append growing an unsized local slice inside a loop.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if target, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					if obj := info.ObjectOf(target); obj != nil && unsized[obj] &&
						contains(loops, n.Pos()) && !contains(loops, declPos[obj]) {
						p.Reportf(n.Pos(), "append grows %s in a hot-path loop but it was declared without capacity; pre-size it with make(..., 0, n)", target.Name)
					}
				}
			}
			// string <-> []byte round trips.
			if inner, ok := conversionArg(info, n); ok {
				if innerCall, ok := ast.Unparen(inner).(*ast.CallExpr); ok {
					if _, ok := conversionArg(info, innerCall); ok {
						outer, innerT := info.TypeOf(n), info.TypeOf(innerCall)
						if isStringByteFlip(outer, innerT) {
							p.Reportf(n.Pos(), "string <-> []byte round-trip conversion allocates twice on the hot path; keep one representation")
						}
					}
				}
			}
			// make(map...) in a loop.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
				if t := info.TypeOf(n); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok && contains(loops, n.Pos()) && !contains(errPaths, n.Pos()) {
						p.Reportf(n.Pos(), "map allocated per iteration in a hot-path loop; hoist it out of the loop or reuse one map")
					}
				}
			}
		case *ast.CompositeLit:
			if !contains(loops, n.Pos()) || contains(errPaths, n.Pos()) {
				return true
			}
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocated per iteration in a hot-path loop; hoist it out of the loop or reuse one map")
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocated per iteration in a hot-path loop; hoist it out of the loop or reuse a buffer")
			}
		}
		return true
	})
}

// conversionArg returns the single argument of a type-conversion call.
func conversionArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return call.Args[0], true
}

// isStringByteFlip reports whether outer/inner are []byte over string or
// string over []byte — a round trip either way.
func isStringByteFlip(outer, inner types.Type) bool {
	if outer == nil || inner == nil {
		return false
	}
	return (isByteSlice(outer) && isString(inner)) || (isString(outer) && isByteSlice(inner))
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte || ok && b.Kind() == types.Uint8
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pkgQual resolves the package path a selector call is qualified with,
// using type information only (program analyzers have complete info).
func pkgQual(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
