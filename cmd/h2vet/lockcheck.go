package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// lockcheckAnalyzer enforces two locking invariants:
//
//  1. every mu.Lock()/mu.RLock() statement must be paired with a
//     `defer mu.Unlock()`/`defer mu.RUnlock()` on the same mutex in the
//     same function — explicit unlock threading leaks locks on early
//     returns and panics; narrow the critical section into a helper
//     whose whole body holds the lock;
//  2. no calls to function *values* (handlers, callbacks, struct fields
//     of func type) and no Broadcast/Pump-style re-entry while a lock is
//     held — the gossip-bus deadlock shape, where a handler running
//     under the bus lock calls back into the bus.
//
// Function literals are separate scopes: a defer inside a closure does
// not pair with a Lock outside it. Two kinds of function values are
// exempt from rule 2: closures defined in the same function (they are
// part of the critical section, not injected behaviour), and injected
// clocks (names containing "clock" or "now") — pure value providers
// that the virtualtime rule itself mandates.
var lockcheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "Lock paired with defer Unlock; no handler/Broadcast calls under a lock",
	Run:  runLockcheck,
}

// reentrantCallees are method names whose invocation under a lock is the
// classic self-deadlock shape in this codebase.
var reentrantCallees = map[string]bool{"Broadcast": true, "Pump": true}

func runLockcheck(p *Pass) {
	for _, f := range p.Files {
		for _, body := range funcBodies(f) {
			p.lockcheckFunc(body)
		}
	}
}

type lockCall struct {
	key    string // rendered mutex expression, e.g. "b.mu"
	read   bool   // RLock/RUnlock flavor
	stmt   ast.Stmt
	parent *ast.BlockStmt
}

func (p *Pass) lockcheckFunc(body *ast.BlockStmt) {
	var locks, unlocks []lockCall
	deferred := map[string]bool{} // key+flavor of deferred unlocks
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if key, name, ok := p.mutexCall(n.Call); ok && (name == "Unlock" || name == "RUnlock") {
				deferred[key+"/"+flavor(name)] = true
			}
		case *ast.BlockStmt:
			for _, stmt := range n.List {
				es, ok := stmt.(*ast.ExprStmt)
				if !ok {
					continue
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				key, name, ok := p.mutexCall(call)
				if !ok {
					continue
				}
				lc := lockCall{key: key, read: name == "RLock" || name == "RUnlock", stmt: stmt, parent: n}
				switch name {
				case "Lock", "RLock":
					locks = append(locks, lc)
				case "Unlock", "RUnlock":
					unlocks = append(unlocks, lc)
				}
			}
		}
		return true
	})
	if len(locks) == 0 {
		return
	}

	for _, lock := range locks {
		name, unlockName := "Lock", "Unlock"
		if lock.read {
			name, unlockName = "RLock", "RUnlock"
		}
		if !deferred[lock.key+"/"+flavor(name)] {
			p.Reportf(lock.stmt.Pos(), "%s.%s() without defer %s.%s() in the same function; narrow the critical section into a helper with defer", lock.key, name, lock.key, unlockName)
		}
		p.checkHeldSpan(body, lock, unlocks)
	}
}

// checkHeldSpan walks the statements where lock is held — from the Lock
// statement to the matching explicit Unlock in the same block, or to the
// end of the function when the unlock is deferred — and flags calls to
// function values and re-entrant bus methods.
func (p *Pass) checkHeldSpan(body *ast.BlockStmt, lock lockCall, unlocks []lockCall) {
	end := body.End()
	for _, ul := range unlocks {
		if ul.key == lock.key && ul.read == lock.read && ul.parent == lock.parent && ul.stmt.Pos() > lock.stmt.Pos() {
			end = ul.stmt.Pos()
			break
		}
	}
	for _, stmt := range lock.parent.List {
		if stmt.Pos() <= lock.stmt.Pos() || stmt.Pos() >= end {
			continue
		}
		inspectShallow(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if reentrantCallees[name] {
				p.Reportf(call.Pos(), "call to %s while %s is held; a handler may re-enter the lock (gossip-bus deadlock shape)", name, lock.key)
				return true
			}
			if p.isFuncValueCall(body, call) {
				p.Reportf(call.Pos(), "call to function value %s while %s is held; invoke handlers outside the critical section", exprText(call.Fun), lock.key)
			}
			return true
		})
	}
}

// isFuncValueCall reports whether the call invokes an injected
// function-typed variable, parameter, or struct field (as opposed to a
// declared function or method, a conversion, a builtin, a local closure,
// or an injected clock).
func (p *Pass) isFuncValueCall(body *ast.BlockStmt, call *ast.CallExpr) bool {
	var obj types.Object
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.ObjectOf(fun)
		name = fun.Name
	case *ast.SelectorExpr:
		obj = p.Info.ObjectOf(fun.Sel)
		name = fun.Sel.Name
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
		return false
	}
	if body.Pos() <= v.Pos() && v.Pos() < body.End() {
		return false // closure or func variable defined in this function
	}
	lower := strings.ToLower(name)
	if strings.Contains(lower, "clock") || strings.Contains(lower, "now") {
		return false // injected clock, mandated by the virtualtime rule
	}
	return true
}

// mutexCall matches <expr>.Lock/RLock/Unlock/RUnlock() and returns the
// rendered mutex expression and method name. When the receiver's type
// resolves, only sync package mutexes qualify; unresolved receivers are
// accepted by name.
func (p *Pass) mutexCall(call *ast.CallExpr) (key, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	key = exprText(sel.X)
	if key == "" {
		return "", "", false
	}
	if t := p.Info.TypeOf(sel.X); t != nil && !isSyncMutex(t) {
		return "", "", false
	}
	return key, sel.Sel.Name, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// flavor collapses Lock/Unlock to "w" and RLock/RUnlock to "r".
func flavor(name string) string {
	if name == "RLock" || name == "RUnlock" {
		return "r"
	}
	return "w"
}
