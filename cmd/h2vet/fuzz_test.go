package main

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective checks the //h2vet:ignore parser never panics and
// only ever yields a single whitespace-free rule token taken from a
// comment that actually carries the directive prefix.
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("//h2vet:ignore lockcheck reason text")
	f.Add("//h2vet:ignore costcheck")
	f.Add("//h2vet:ignore")
	f.Add("//h2vet:ignoreall")
	f.Add("// regular comment")
	f.Add("//h2vet:ignore\tall  spaced\treason")
	f.Add("//h2vet:ignore  \t ")
	f.Fuzz(func(t *testing.T, text string) {
		rule, ok := parseIgnoreDirective(text)
		if !ok {
			if rule != "" {
				t.Fatalf("parseIgnoreDirective(%q) = %q without ok", text, rule)
			}
			return
		}
		if !strings.HasPrefix(text, "//h2vet:ignore") {
			t.Fatalf("parsed a directive out of %q", text)
		}
		if fields := strings.Fields(rule); len(fields) != 1 || fields[0] != rule {
			t.Fatalf("rule %q is empty or contains whitespace (from %q)", rule, text)
		}
		if !strings.Contains(text, rule) {
			t.Fatalf("rule %q is not literally part of %q", rule, text)
		}
	})
}

// FuzzRulesFlag checks the -rules splitter never panics, preserves empty
// segments (so typos like "a,,b" surface as unknown rules instead of
// vanishing), trims every part, and never leaves a comma inside a part.
func FuzzRulesFlag(f *testing.F) {
	f.Add("costcheck,lockorder")
	f.Add(" a ,,b\t")
	f.Add("")
	f.Add(",")
	f.Add("virtualtime")
	f.Fuzz(func(t *testing.T, s string) {
		parts := splitRules(s)
		if want := strings.Count(s, ",") + 1; len(parts) != want {
			t.Fatalf("splitRules(%q) = %d parts, want %d", s, len(parts), want)
		}
		for _, p := range parts {
			if p != strings.TrimSpace(p) {
				t.Fatalf("splitRules(%q): part %q is not trimmed", s, p)
			}
			if strings.Contains(p, ",") {
				t.Fatalf("splitRules(%q): part %q contains a comma", s, p)
			}
		}
	})
}
