package main

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkSource type-checks src as a single-file package under pkgPath and
// returns the formatted diagnostics of one analyzer. The source importer
// resolves real imports (stdlib and this module's internal packages), so
// seeded violations exercise the same pipeline as h2vet ./... .
func checkSource(t *testing.T, a *Analyzer, pkgPath, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u := &unit{
		pkgPath: pkgPath,
		module:  "github.com/h2cloud/h2cloud",
		fset:    fset,
		files:   []*ast.File{f},
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Logf("type error: %v", err) },
	}
	conf.Check(pkgPath, fset, u.files, u.info)
	diags, _ := runAnalyzers(u, []*Analyzer{a})
	sortDiagnostics(diags)
	var out []string
	for _, d := range diags {
		out = append(out, d.String())
	}
	return out
}

func expectDiags(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\ngot:  %q\nwant: %q", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

const simPkg = "github.com/h2cloud/h2cloud/internal/core"

func TestVirtualtime(t *testing.T) {
	cases := []struct {
		name    string
		pkgPath string
		src     string
		want    []string
	}{
		{
			name:    "seeded violations caught",
			pkgPath: simPkg,
			src: `package core

import "time"

func badNow() time.Time { return time.Now() }
func badSince(start time.Time) time.Duration { return time.Since(start) }
func badSleep() { time.Sleep(time.Millisecond) }
`,
			want: []string{
				"src.go:5:34: virtualtime: call to time.Now in simulator package internal/core; charge internal/vclock or use an injected clock",
				"src.go:6:55: virtualtime: call to time.Since in simulator package internal/core; charge internal/vclock or use an injected clock",
				"src.go:7:19: virtualtime: call to time.Sleep in simulator package internal/core; charge internal/vclock or use an injected clock",
			},
		},
		{
			name:    "renamed import still caught",
			pkgPath: simPkg,
			src: `package core

import wall "time"

func sneaky() wall.Time { return wall.Now() }
`,
			want: []string{
				"src.go:5:34: virtualtime: call to time.Now in simulator package internal/core; charge internal/vclock or use an injected clock",
			},
		},
		{
			name:    "injected clock default is a value reference, allowed",
			pkgPath: simPkg,
			src: `package core

import "time"

type thing struct{ now func() time.Time }

func newThing() *thing { return &thing{now: time.Now} }
func (t *thing) stamp() time.Time { return t.now() }
`,
			want: nil,
		},
		{
			name:    "outside internal is the sanctioned edge",
			pkgPath: "github.com/h2cloud/h2cloud/cmd/h2cloudd",
			src: `package main

import "time"

func main() { _ = time.Now() }
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, checkSource(t, virtualtimeAnalyzer, tc.pkgPath, tc.src), tc.want)
		})
	}
}

func TestMapiter(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "append without sort caught",
			src: `package core

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			want: []string{
				"src.go:6:3: mapiter: append to out in map iteration order over m with no later sort; sort out or iterate sorted keys",
			},
		},
		{
			name: "append with later sort allowed",
			src: `package core

import "sort"

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`,
			want: nil,
		},
		{
			name: "hash and channel send inside loop caught",
			src: `package core

import "hash/crc32"

func digest(m map[string][]byte, ch chan string) uint32 {
	h := crc32.NewIEEE()
	for k, v := range m {
		h.Write(v)
		ch <- k
	}
	return h.Sum32()
}
`,
			want: []string{
				"src.go:8:3: mapiter: call to Write inside map iteration over m; emission order is nondeterministic, iterate sorted keys",
				"src.go:9:3: mapiter: channel send inside map iteration over m; delivery order is nondeterministic",
			},
		},
		{
			name: "loop-local slice is order-free",
			src: `package core

func count(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
`,
			want: nil,
		},
		{
			name: "slice range untouched",
			src: `package core

func collect(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, checkSource(t, mapiterAnalyzer, simPkg, tc.src), tc.want)
		})
	}
}

func TestLockcheck(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "lock without defer caught",
			src: `package core

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
`,
			want: []string{
				"src.go:11:2: lockcheck: b.mu.Lock() without defer b.mu.Unlock() in the same function; narrow the critical section into a helper with defer",
			},
		},
		{
			name: "defer pairing allowed, flavors matter",
			src: `package core

import "sync"

type box struct {
	mu sync.RWMutex
	n  int
}

func (b *box) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) read() int {
	b.mu.RLock()
	defer b.mu.Unlock()
	return b.n
}
`,
			want: []string{
				"src.go:17:2: lockcheck: b.mu.RLock() without defer b.mu.RUnlock() in the same function; narrow the critical section into a helper with defer",
			},
		},
		{
			name: "handler call under lock caught",
			src: `package core

import "sync"

type bus struct {
	mu sync.Mutex
	h  func(int)
}

func (b *bus) deliver(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.h(v)
}
`,
			want: []string{
				"src.go:13:2: lockcheck: call to function value b.h while b.mu is held; invoke handlers outside the critical section",
			},
		},
		{
			name: "broadcast re-entry under lock caught",
			src: `package core

import "sync"

type peer struct {
	mu  sync.Mutex
	bus interface{ Broadcast(int) }
}

func (p *peer) relay(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bus.Broadcast(v)
}
`,
			want: []string{
				"src.go:13:2: lockcheck: call to Broadcast while p.mu is held; a handler may re-enter the lock (gossip-bus deadlock shape)",
			},
		},
		{
			name: "handler call after explicit unlock span allowed",
			src: `package core

import "sync"

type bus struct {
	mu sync.Mutex
	h  func(int)
	q  []int
}

func (b *bus) deliver() {
	//h2vet:ignore lockcheck narrow pop-then-deliver span, verified by TestLockcheck
	b.mu.Lock()
	v := b.q[0]
	b.mu.Unlock()
	b.h(v)
}
`,
			want: nil,
		},
		{
			name: "local closure and injected clock exempt",
			src: `package core

import (
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	now   func() time.Time
	items map[string]time.Time
}

func (s *store) stampAll(keys []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	put := func(k string) { s.items[k] = s.now() }
	for _, k := range keys {
		put(k)
	}
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, checkSource(t, lockcheckAnalyzer, simPkg, tc.src), tc.want)
		})
	}
}

func TestDroppederr(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "objstore put and get drops caught",
			src: `package demo

import (
	"time"

	"github.com/h2cloud/h2cloud/internal/objstore"
)

func drop(n *objstore.Node) {
	n.Put("x", nil, nil, time.Unix(0, 0))
	data, _, _ := n.Get("x")
	_ = data
}
`,
			want: []string{
				"src.go:10:2: droppederr: result of objstore Put is discarded; check the error",
				"src.go:11:11: droppederr: error result of objstore Get is assigned to _; check the error",
			},
		},
		{
			name: "core decode drop caught",
			src: `package demo

import "github.com/h2cloud/h2cloud/internal/core"

func drop(data []byte) *core.NameRing {
	r, _ := core.DecodeNameRing(data)
	return r
}
`,
			want: []string{
				"src.go:6:5: droppederr: error result of core.DecodeNameRing is assigned to _; check the error",
			},
		},
		{
			name: "checked errors and errorless calls allowed",
			src: `package demo

import (
	"time"

	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

func ok(n *objstore.Node, r *core.NameRing) ([]byte, error) {
	if err := n.Put("x", nil, nil, time.Unix(0, 0)); err != nil {
		return nil, err
	}
	return core.EncodeNameRing(r), nil
}
`,
			want: nil,
		},
		{
			name: "same-name methods elsewhere exempt",
			src: `package demo

import (
	"context"

	"github.com/h2cloud/h2cloud/internal/pathdb"
)

func ok(db *pathdb.DB) {
	db.Delete(context.Background(), "/tmp")
}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			src: `package demo

import (
	"time"

	"github.com/h2cloud/h2cloud/internal/objstore"
)

func drop(n *objstore.Node) {
	//h2vet:ignore droppederr best-effort write, failure tolerated
	n.Put("x", nil, nil, time.Unix(0, 0))
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, checkSource(t, droppederrAnalyzer, "github.com/h2cloud/h2cloud/internal/demo", tc.src), tc.want)
		})
	}
}

func TestBackoffcheck(t *testing.T) {
	cases := []struct {
		name    string
		pkgPath string
		src     string
		want    []string
	}{
		{
			name:    "sleep and timer waits in retry loop caught",
			pkgPath: simPkg,
			src: `package core

import "time"

func retry(op func() error) error {
	var err error
	for i := 0; i < 4; i++ {
		if err = op(); err == nil {
			return nil
		}
		time.Sleep(time.Duration(i) * time.Millisecond)
		<-time.After(time.Millisecond)
	}
	return err
}
`,
			want: []string{
				"src.go:11:3: backoffcheck: call to time.Sleep inside a loop in simulator package internal/core; charge backoff to internal/vclock (vclock.Charge), never the wall clock",
				"src.go:12:5: backoffcheck: call to time.After inside a loop in simulator package internal/core; charge backoff to internal/vclock (vclock.Charge), never the wall clock",
			},
		},
		{
			name:    "goroutine launched from loop still caught, once",
			pkgPath: simPkg,
			src: `package core

import "time"

func poll(ready func() bool) {
	for !ready() {
		for j := 0; j < 2; j++ {
			go func() { time.Sleep(time.Second) }()
		}
	}
}
`,
			want: []string{
				"src.go:8:16: backoffcheck: call to time.Sleep inside a loop in simulator package internal/core; charge backoff to internal/vclock (vclock.Charge), never the wall clock",
			},
		},
		{
			name:    "maintenance ticker and loop-free sleep allowed",
			pkgPath: simPkg,
			src: `package core

import "time"

func run(stop chan struct{}, tick func()) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			tick()
		}
	}
}

func settle() { time.Sleep(time.Millisecond) }
`,
			want: nil,
		},
		{
			name:    "outside internal is the sanctioned edge",
			pkgPath: "github.com/h2cloud/h2cloud/cmd/h2cloudd",
			src: `package main

import "time"

func spin() {
	for {
		time.Sleep(time.Second)
	}
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, checkSource(t, backoffcheckAnalyzer, tc.pkgPath, tc.src), tc.want)
		})
	}
}

func TestIgnoreDirectiveScope(t *testing.T) {
	// A directive suppresses its own line and the next, but not farther.
	src := `package core

import "time"

func a() time.Time { return time.Now() } //h2vet:ignore virtualtime same line

//h2vet:ignore virtualtime next line
func b() time.Time { return time.Now() }

func c() time.Time { return time.Now() }
`
	got := checkSource(t, virtualtimeAnalyzer, simPkg, src)
	want := []string{
		"src.go:10:29: virtualtime: call to time.Now in simulator package internal/core; charge internal/vclock or use an injected clock",
	}
	expectDiags(t, got, want)
}
