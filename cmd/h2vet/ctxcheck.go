package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxcheckAnalyzer enforces context propagation through the I/O layers:
// cancellation must flow from the driver (cmd/) down through every
// objstore.Store/Batcher primitive call, or an aborted run keeps issuing
// simulated I/O that the cost model then charges to nobody. Inside
// internal/ (non-test files):
//
//   - context.Background() and context.TODO() are findings: request-scoped
//     code must derive its context from the caller's parameter; fresh
//     roots belong to drivers. A deliberate root (a bench harness, a test
//     scaffold) carries //h2vet:ignore ctxcheck <reason>;
//   - context.WithoutCancel detaches work from its caller's cancellation,
//     which is correct only for the durable maintenance brackets (GC
//     drain, orphan scrub) that must finish once started. Each such call
//     declares itself with //h2vet:durable <reason> on its line or the
//     line above; an undeclared WithoutCancel is a finding;
//   - a Store/Batcher primitive call whose context argument is a nil
//     literal or resolves to a package-level context variable is a
//     finding: neither carries the caller's cancellation.
//
// Local derivation chains are traced through the def-use pass: a ctx
// built by context.WithTimeout(parent, d) inherits parent's origin, so
// only the root of the chain is judged.
var ctxcheckAnalyzer = &Analyzer{
	Name:       "ctxcheck",
	Doc:        "objstore I/O receives the caller's context; no fresh roots or undeclared WithoutCancel in internal/",
	RunProgram: runCtxcheck,
}

// ctxOrigin classifies where a context expression ultimately comes from.
type ctxOrigin int

const (
	ctxUnknown    ctxOrigin = iota // field, helper result, ... — give the benefit of the doubt
	ctxParam                       // derived from a function/literal parameter
	ctxBackground                  // rooted in context.Background()/TODO()
	ctxDurable                     // WithoutCancel declared with //h2vet:durable
	ctxDetached                    // undeclared WithoutCancel
	ctxPkgVar                      // a package-level context variable
	ctxNil                         // literal nil
)

func runCtxcheck(p *ProgramPass) {
	prog := p.Prog
	durables := collectLineDirectives(prog.source, "durable")

	var primIfaces []primIface
	for _, name := range []string{"Store", "Batcher"} {
		if iface := objstoreInterface(prog, name); iface != nil {
			names := map[string]bool{}
			for i := 0; i < iface.NumMethods(); i++ {
				names[iface.Method(i).Name()] = true
			}
			primIfaces = append(primIfaces, primIface{kind: name, iface: iface, names: names})
		}
	}

	for _, u := range prog.source {
		if !internalPkg(u.pkgPath) {
			continue
		}
		for _, f := range u.files {
			pos := u.fset.Position(f.Pos())
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			checkCtxFile(p, u, f, durables, primIfaces)
		}
	}
}

// internalPkg reports whether the import path has an "internal" segment.
func internalPkg(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

func checkCtxFile(p *ProgramPass, u *unit, f *ast.File, durables map[string]map[int]string, primIfaces []primIface) {
	info := u.info

	// Fresh roots and undeclared detaches are findings wherever they
	// appear in the file, not only when the result reaches an I/O call:
	// a Background-rooted context poisons everything derived from it.
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch ctxCallName(info, call) {
		case "Background", "TODO":
			p.Reportf(call.Pos(), "context.%s() in internal/ severs cancellation from the caller; accept a ctx parameter and derive from it (drivers own the root; //h2vet:ignore ctxcheck <reason> for deliberate harness roots)", ctxCallName(info, call))
		case "WithoutCancel":
			pos := u.fset.Position(call.Pos())
			if _, ok := directiveFor(durables, pos.Filename, pos.Line); !ok {
				p.Reportf(call.Pos(), "context.WithoutCancel detaches this work from the caller's cancellation; declare the durable bracket with //h2vet:durable <reason> (GC drain and scrub brackets are the intended uses) or propagate ctx unchanged")
			}
		}
		return true
	})

	// I/O call sites: judge the origin of the context argument.
	var scopes []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				scopes = append(scopes, n)
			}
		case *ast.FuncLit:
			scopes = append(scopes, n)
		}
		return true
	})
	for _, scope := range scopes {
		checkCtxScope(p, u, scope, durables, primIfaces)
	}
}

// checkCtxScope traces context locals inside one function scope and
// judges the ctx argument of each Store/Batcher primitive call.
func checkCtxScope(p *ProgramPass, u *unit, scope ast.Node, durables map[string]map[int]string, primIfaces []primIface) {
	info := u.info
	var body *ast.BlockStmt
	var params *ast.FieldList
	switch s := scope.(type) {
	case *ast.FuncDecl:
		body, params = s.Body, s.Type.Params
	case *ast.FuncLit:
		body, params = s.Body, s.Type.Params
	}
	if body == nil {
		return
	}

	paramVars := map[*types.Var]bool{}
	if params != nil {
		for _, field := range params.List {
			for _, name := range field.Names {
				if v, ok := info.ObjectOf(name).(*types.Var); ok && isContextType(v.Type()) {
					paramVars[v] = true
				}
			}
		}
	}

	// Local origin map, fixpointed so chains of := assignments resolve.
	origins := map[*types.Var]ctxOrigin{}
	var originOf func(e ast.Expr) ctxOrigin
	originOf = func(e ast.Expr) ctxOrigin {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if e.Name == "nil" {
				return ctxNil
			}
			v, ok := info.ObjectOf(e).(*types.Var)
			if !ok || v == nil {
				return ctxUnknown
			}
			if paramVars[v] {
				return ctxParam
			}
			if o, ok := origins[v]; ok {
				return o
			}
			if !v.IsField() && v.Parent() != nil && v.Parent().Parent() == types.Universe && isContextType(v.Type()) {
				return ctxPkgVar
			}
			return ctxUnknown
		case *ast.CallExpr:
			switch ctxCallName(info, e) {
			case "Background", "TODO":
				return ctxBackground
			case "WithoutCancel":
				pos := u.fset.Position(e.Pos())
				if _, ok := directiveFor(durables, pos.Filename, pos.Line); ok {
					return ctxDurable
				}
				return ctxDetached
			case "WithCancel", "WithTimeout", "WithDeadline", "WithValue", "WithCancelCause", "WithDeadlineCause", "WithTimeoutCause":
				if len(e.Args) > 0 {
					return originOf(e.Args[0])
				}
			}
			return ctxUnknown
		}
		return ctxUnknown
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) == 0 || len(assign.Rhs) == 0 {
				return true
			}
			bind := func(lhs ast.Expr, rhs ast.Expr) {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					return
				}
				v, ok := info.ObjectOf(id).(*types.Var)
				if !ok || v == nil || !isContextType(v.Type()) || paramVars[v] {
					return
				}
				if o := originOf(rhs); o != ctxUnknown && origins[v] != o {
					origins[v] = o
					changed = true
				}
			}
			if len(assign.Lhs) == len(assign.Rhs) {
				for i := range assign.Lhs {
					bind(assign.Lhs[i], assign.Rhs[i])
				}
			} else if len(assign.Rhs) == 1 {
				// ctx, cancel := context.WithTimeout(...): the context is
				// the first result.
				bind(assign.Lhs[0], assign.Rhs[0])
			}
			return true
		})
	}

	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		prim := false
		for _, pi := range primIfaces {
			if isStorePrimitive(fn, pi.iface, pi.names) {
				prim = true
			}
		}
		if !prim {
			return true
		}
		arg := call.Args[0]
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			return true
		}
		if b, isBasic := tv.Type.(*types.Basic); !isContextType(tv.Type) && !(isBasic && b.Kind() == types.UntypedNil) {
			return true
		}
		switch originOf(arg) {
		case ctxNil:
			p.Reportf(call.Pos(), "objstore %s call receives a nil context; pass the caller's ctx so cancellation reaches the I/O layer", fn.Name())
		case ctxPkgVar:
			p.Reportf(call.Pos(), "objstore %s call receives a package-level context; thread the caller's ctx parameter instead so cancellation propagates per request", fn.Name())
		}
		return true
	})
}

// ctxCallName returns the function name for a call into package context,
// or "".
func ctxCallName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	return fn.Name()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// calleeFunc resolves the called function/method of a call expression.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

var _ = token.NoPos
