package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// explainTexts holds the long-form documentation printed by
// `h2vet -explain <rule>`: what the rule computes, why the repo cares,
// and how to satisfy or suppress it. Keep one entry per analyzer; the
// TestExplainCoversAllRules golden enforces the invariant.
var explainTexts = map[string]string{
	"virtualtime": `virtualtime keeps the simulator deterministic: internal/ packages must not
read the wall clock (time.Now/Since/Sleep). All elapsed time flows through
internal/vclock or an injected clock function, so a run's timing is a pure
function of its inputs. Fix by threading a clock; suppress a deliberate
seam with //h2vet:ignore virtualtime <reason>.`,

	"mapiter": `mapiter flags order-sensitive uses of Go map iteration: appending to a
slice that is later encoded/hashed/broadcast, writing to output, or
sending on a channel directly from a range over a map. Map order is
random per run, so these leak nondeterminism into results. Fix by
collecting keys and sorting before use.`,

	"lockcheck": `lockcheck enforces the repo's narrow-span locking idiom: a mu.Lock()
pairs with defer mu.Unlock() in the same function, and no handler,
callback, or Broadcast-like call runs while the lock is held (that is
how deadlocks and re-entrancy bugs start). Restructure so user code runs
outside the critical section.`,

	"droppederr": `droppederr requires the error results of internal/core Decode*/Encode*
and objstore/cluster Put/Get/Delete to be consumed. A dropped decode
error turns data corruption into silent divergence between replicas.
Handle it, return it, or explain the best-effort case with
//h2vet:ignore droppederr <reason>.`,

	"backoffcheck": `backoffcheck forbids wall-clock waits (time.Sleep/After/timers) inside
loops in internal/ packages: retry backoff must be charged to
internal/vclock so simulated time stays decoupled from real time and a
million-account run finishes in seconds. Replace the sleep with a
vclock charge.`,

	"costcheck": `costcheck is the cost-model audit: every objstore.Store implementation
must reach vclock.Charge on its success paths (uncharged operations make
the simulator lie about service time), and wrappers that delegate to an
inner Store must not double-charge. The call graph decides reachability,
so helpers can do the charging.`,

	"lockorder": `lockorder builds the static lock-acquisition graph — which mutex classes
are acquired while which are held, propagated through the call graph —
and requires it to be acyclic with no same-mutex re-entry. A cycle is a
latent deadlock that only needs the right interleaving. Fix by imposing
a global acquisition order.`,

	"sentinelcheck": `sentinelcheck guards the typed Err* sentinels: compare with errors.Is
(never == or string matching), wrap with %w so the chain survives, and
keep every sentinel that crosses internal/httpapi present in both the
server status table and the client reconstruction table, so errors
round-trip the wire intact.`,

	"guardcheck": `guardcheck is static race detection tuned to this repo's lock idioms.
For every struct with a named sync.Mutex/RWMutex field it infers a
field -> guard map: a sibling field whose access sites hold the same
mutex class at a clear majority of sites (>= 2 sites and >= 75%) is
considered guarded by it, and an explicit

    //h2vet:guardedby <mutex>

annotation on the field declaration seeds the map directly (a wrong
mutex name is itself a finding). Locksets propagate through the call
graph — a *Locked helper that never locks inherits the intersection of
its callers' held sets — and code inside a go-launched function literal
starts from the empty lockset, because the spawner's locks are not held
on the new goroutine. A diagnostic fires for every access to a guarded
field reachable from some go statement without the guard held: exactly
the accesses a concurrent traffic driver can race on.

Run h2vet -explain guardcheck -pkg <path> [patterns] to print the
inferred guard table.`,

	"leakcheck": `leakcheck finds go statements whose goroutine has no bounded exit. The
spawned function (named or literal) and its transitive callees are
scanned for loops that can never be left: an unconditional for with no
return/goto and no break that targets the loop, or a for-range over a
time.Ticker channel (tickers are never closed, so the range never ends).
A break inside a nested select/switch exits that construct, not the
loop — the classic pitfall gets its own message. Bound the goroutine
with a <-ctx.Done() return, a closed-channel exit, or a WaitGroup-joined
completion; a deliberate process-lifetime daemon can carry
//h2vet:ignore leakcheck <reason> on its go statement.`,

	"alloccheck": `alloccheck budgets heap allocations on the hot paths: everything
reachable from an objstore.Store or objstore.Batcher primitive, from the
NameRing codec/merge routines (core.Encode*/Decode*/Merged and the
NameRing AppendAll/AppendLive/All/Live/Merge methods backing the pooled
codecs), from the ring placement methods
(Ring.Partition/Devices/PartitionDevices, their *Append variants, and
the cached DeviceIDs), plus functions annotated //h2vet:hotpath. Inside
that set it flags the per-op allocation patterns that cap the bench
sweeps: fmt.Sprintf/Errorf off the error path, append in a loop growing
a slice declared without capacity, string <-> []byte round-trip
conversions, and map allocations or composite literals inside loops.
Pre-size, hoist, or reuse — sync.Pool scratch taken at function entry
and returned before exit is the blessed idiom for per-call working sets.
Error paths (branches and returns that produce an error) are exempt.

Run h2vet -explain alloccheck -pkg <path> [patterns] to print the
computed hot-path set.`,

	"poolcheck": `poolcheck turns the sync.Pool scratch idiom into a checked contract,
using the hand-rolled CFG + def-use pass (dataflow.go) in place of SSA.
For every value bound from a pool.Get() in a function scope:

  - a matching Put on the same pool must be reached on every non-error
    path: a deferred Put covers all paths; otherwise each CFG path from
    the Get to a success return (or to falling off the end) must pass a
    Put statement. Paths returning a non-nil error and paths that die in
    panic/Fatal are exempt — losing a pool entry there is harmless;
  - when the pooled value holds pointers (slices/maps/structs containing
    strings, pointers, ...) it must be cleared between Get and Put —
    builtin clear on the scratch or an alias, or a Reset method — so a
    pooled buffer cannot pin references against the GC (the PR 8 codec
    idiom: clear(tuples); *sp = tuples[:0]; pool.Put(sp));
  - no alias of the scratch may escape: returning it, storing it to a
    field or package variable, sending it on a channel, or handing it to
    a goroutine lets the pool recycle memory that is still referenced,
    and any use after a non-deferred Put is a use-after-free against the
    pool. Aliases are tracked through assignments, slicing, indexing,
    type assertions, and append-like calls (a call result of the same
    type as an aliased argument, e.g. r.AppendAll((*sp)[:0])).

Cross-pool Puts (scratch from pool A returned to pool B) and Get results
never bound to a variable are findings too. Suppress a deliberate
ownership transfer with //h2vet:ignore poolcheck <reason>.`,

	"ctxcheck": `ctxcheck enforces context propagation down the I/O layers: cancellation
must flow from the driver (cmd/) through every objstore.Store/Batcher
primitive call, or an aborted run keeps issuing simulated I/O. Inside
internal/ packages (test files excluded):

  - context.Background()/TODO() are findings: request-scoped code derives
    its context from the caller's parameter; fresh roots belong to
    drivers. Deliberate harness roots (bench, fstest scaffolds) carry
    //h2vet:ignore ctxcheck <reason>;
  - context.WithoutCancel must declare itself a durable bracket with
    //h2vet:durable <reason> on its line or the line above. The GC
    intent enqueue, the eager-GC reclamation after a committed
    tombstone, and the shutdown flush are the intended uses: work that
    must finish once started. An undeclared detach is a finding;
  - a Store/Batcher primitive call whose ctx argument is a nil literal
    or a package-level context variable is a finding; derivation chains
    (WithTimeout/WithCancel/WithValue/...) are traced to their root
    through local assignments, so only the root is judged.`,

	"atomiccheck": `atomiccheck enforces atomic-access consistency: a struct field accessed
through the function-style sync/atomic API anywhere in the program
(atomic.AddInt64(&s.n, 1), ...) must be accessed atomically everywhere
that goroutine-reachable code touches it. A plain read or write of the
same field inside a go-launched function literal, or in any function the
RTA call graph reaches from a go statement, races with the atomic side —
the atomic half orders nothing for the plain half. The finding names the
atomic witness, the go statement, and the typed atomic (atomic.Int64,
atomic.Uint64, ...) whose method set makes the race unrepresentable; the
repo itself uses only typed atomics, and this rule keeps it that way.
Purely sequential plain access (constructor initialization before the
struct is shared) is exempt.`,

	"callgraph": `callgraph is not a rule but the shared analysis substrate: h2vet builds
one call graph over the typed module and every whole-program rule
(costcheck, lockorder, guardcheck, leakcheck, alloccheck, atomiccheck)
consumes it. Call sites through interfaces are first expanded CHA-style
(every implementing type's method is a possible callee), then refined
with Rapid Type Analysis: an interface edge to a concrete method
survives only if its receiver type is actually instantiated — composite
literal, conversion, new(T), var declaration — in code reachable from
the roots (package main functions, init, and the exported API, which is
how the test packages enter). Uninstantiated implementations keep their
declared-body analysis but receive no interface edges, so a golden-test
stub or a retired baseline cannot widen lockorder cycles, leak
reachability, or costcheck delegation onto live code.

Run h2vet -explain callgraph [patterns] to print the CHA vs RTA edge
counts and the per-rule finding delta measured on this module.`,

	"deadignore": `deadignore reports //h2vet:ignore directives with no effect: the rule
name is a typo, or no diagnostic of that rule fires on the directive's
line or the line below. A stale suppression is how the bug pattern it
once excused comes back unnoticed. Delete the directive; a deliberately
kept one (e.g. guarding flaky generated code) can be excused with an
explicit //h2vet:ignore deadignore <reason> — a blanket "all" does not
apply to deadignore itself. When -rules restricts the analyzer set,
directives for rules that did not run are given the benefit of the
doubt.`,
}

// explain prints the long-form doc for one rule, plus the computed
// tables for the rules that have them. prog may be nil when loading
// failed or was skipped; the doc still prints. "callgraph" is a
// pseudo-rule documenting the shared RTA call graph.
func explain(w io.Writer, rule string, prog *Program, pkgFilter string) {
	doc := explainTexts[rule]
	if a := analyzerByName(rule); a != nil {
		fmt.Fprintf(w, "%s — %s\n\n%s\n", rule, a.Doc, doc)
	} else {
		fmt.Fprintf(w, "%s\n\n%s\n", rule, doc)
	}
	if prog == nil {
		return
	}
	switch rule {
	case "guardcheck":
		explainGuards(w, prog, pkgFilter)
	case "alloccheck":
		explainHotSet(w, prog, pkgFilter)
	case "callgraph":
		explainCallgraph(w, prog)
	}
}

// explainCallgraph builds the call graph twice — CHA expansion only, and
// with the RTA refinement the analyzers actually use — and reports the
// edge-count delta plus the per-rule finding delta, so the precision the
// refinement buys stays measured instead of assumed.
func explainCallgraph(w io.Writer, prog *Program) {
	prog.graphOnce.Do(func() {}) // take ownership of the cached graph slot
	cha := buildCallGraphMode(prog, true)
	rta := buildCallGraphMode(prog, false)

	s := rta.stats
	fmt.Fprintf(w, "\ncall graph (RTA over the shared typed universe):\n")
	fmt.Fprintf(w, "  functions            %6d (%d roots: main, init, exported API; %d reachable)\n", s.funcs, s.roots, s.reachable)
	fmt.Fprintf(w, "  named concrete types %6d (%d instantiated in reachable code)\n", s.named, s.instantiated)
	fmt.Fprintf(w, "  interface call sites %6d\n", s.ifaceSites)
	fmt.Fprintf(w, "  edges (CHA)          %6d (%d through interfaces)\n", cha.stats.chaEdges, cha.stats.chaIfaceEdges)
	fmt.Fprintf(w, "  edges (RTA)          %6d (%d through interfaces)\n", s.rtaEdges, s.rtaIfaceEdges)
	if cha.stats.chaEdges > 0 {
		dropped := cha.stats.chaEdges - s.rtaEdges
		fmt.Fprintf(w, "  pruned               %6d spurious edges (%.1f%% of CHA, %.1f%% of interface edges)\n",
			dropped, 100*float64(dropped)/float64(cha.stats.chaEdges),
			100*float64(cha.stats.chaIfaceEdges-s.rtaIfaceEdges)/float64(max(1, cha.stats.chaIfaceEdges)))
	}

	countFindings := func(g *callGraph) map[string]int {
		prog.graph = g
		diags, _ := runProgramAnalyzers(prog, allAnalyzers())
		m := map[string]int{}
		for _, d := range diags {
			m[d.Rule]++
		}
		return m
	}
	chaCounts := countFindings(cha)
	rtaCounts := countFindings(rta)
	prog.graph = rta

	rules := map[string]bool{}
	for r := range chaCounts {
		rules[r] = true
	}
	for r := range rtaCounts {
		rules[r] = true
	}
	names := make([]string, 0, len(rules))
	for r := range rules {
		names = append(names, r)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\nfinding precision (whole-program rules, ignores applied):\n")
	if len(names) == 0 {
		fmt.Fprintf(w, "  no findings under either graph — the RTA pruning introduces none and the repo is clean\n")
		return
	}
	for _, r := range names {
		delta := rtaCounts[r] - chaCounts[r]
		fmt.Fprintf(w, "  %-13s CHA %3d  RTA %3d  (%+d)\n", r, chaCounts[r], rtaCounts[r], delta)
	}
}

func analyzerByName(name string) *Analyzer {
	for _, a := range allAnalyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// matchesPkg filters by package path: empty matches everything,
// otherwise the path must end in or contain the filter.
func matchesPkg(path, filter string) bool {
	if filter == "" {
		return true
	}
	return path == filter || strings.HasSuffix(path, "/"+filter) || strings.Contains(path, filter)
}

// explainGuards prints the inferred/annotated guard table.
func explainGuards(w io.Writer, prog *Program, pkgFilter string) {
	ga := analyzeGuards(prog)
	fields := make([]*guardFact, 0, len(ga.facts))
	for _, fact := range ga.facts {
		if fact.guard == nil {
			continue
		}
		pkg := ""
		if fact.field.Pkg() != nil {
			pkg = fact.field.Pkg().Path()
		}
		if !matchesPkg(pkg, pkgFilter) {
			continue
		}
		fields = append(fields, fact)
	}
	sort.Slice(fields, func(i, j int) bool {
		return ga.fieldName(fields[i].field) < ga.fieldName(fields[j].field)
	})
	fmt.Fprintf(w, "\nguard table (%d guarded fields):\n", len(fields))
	for _, fact := range fields {
		origin := fmt.Sprintf("inferred: held at %d of %d sites", fact.guarded, fact.total)
		if fact.annotated {
			origin = "//h2vet:guardedby annotation"
		}
		fmt.Fprintf(w, "  %-40s guarded by %-20s (%s)\n",
			ga.fieldName(fact.field), fact.guard.Name(), origin)
	}
}

// explainHotSet prints the hot-path function set and why each member is
// in it.
func explainHotSet(w io.Writer, prog *Program, pkgFilter string) {
	hs := computeHotSet(prog)
	type row struct{ name, reason string }
	var rows []row
	for _, fn := range hs.order {
		pkg := ""
		if fn.Pkg() != nil {
			pkg = fn.Pkg().Path()
		}
		if !matchesPkg(pkg, pkgFilter) {
			continue
		}
		rows = append(rows, row{shortName(fn), hs.reason[fn]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Fprintf(w, "\nhot-path set (%d functions):\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(w, "  %-50s %s\n", r.name, r.reason)
	}
}
