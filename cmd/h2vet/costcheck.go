package main

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// costcheckAnalyzer enforces the cost-accounting invariant behind every
// figure the simulator emits: simulated service time is whatever
// vclock.Charge accumulates, so an objstore.Store primitive that never
// charges silently zeroes its cost, and a wrapper that both delegates to
// an inner Store and charges on its own double-counts it.
//
// Concretely, for every program type implementing objstore.Store and
// every interface primitive (Put, Get, GetRange, Head, Delete, Copy):
//
//   - a leaf implementation (one that does not delegate to another Store
//     primitive) must reach vclock.Charge/Fanout through the call graph;
//   - a wrapper (one that delegates) must not also reach a charge call on
//     its own frames — the inner implementation owns the cost. Wrappers
//     that model extra cost deliberately (chaos latency spikes, retry
//     backoff) annotate the single charge site with
//     //h2vet:ignore costcheck <reason>.
//
// The same contract covers the optional objstore.Batcher interface: a
// native MultiGet/MultiHead/MultiPut/MultiDelete must charge its one
// overlapped fanout window itself, while a middleware ring forwarding a
// batch (directly or through the objstore.Multi* dispatch helpers) must
// not re-charge what the inner store already accounted.
//
// Traversal stops at Store- and Batcher-primitive boundaries, so an
// inner implementation's own charges are never attributed to the
// wrapper.
var costcheckAnalyzer = &Analyzer{
	Name:       "costcheck",
	Doc:        "objstore.Store implementations charge vclock exactly once per operation",
	RunProgram: runCostcheck,
}

// primIface is one cost-bearing interface the analyzer enforces: the
// mandatory objstore.Store and the optional objstore.Batcher.
type primIface struct {
	kind  string // diagnostic noun: "Store" or "Batcher"
	iface *types.Interface
	names map[string]bool
}

func runCostcheck(p *ProgramPass) {
	g := p.Prog.callGraph()
	var ifaces []primIface
	for _, spec := range []struct{ kind, name string }{
		{"Store", "Store"},
		{"Batcher", "Batcher"},
	} {
		iface := objstoreInterface(p.Prog, spec.name)
		if iface == nil {
			continue // golden tests may define only a subset
		}
		names := map[string]bool{}
		for i := 0; i < iface.NumMethods(); i++ {
			names[iface.Method(i).Name()] = true
		}
		ifaces = append(ifaces, primIface{kind: spec.kind, iface: iface, names: names})
	}
	if len(ifaces) == 0 {
		return // module doesn't define objstore.Store (golden tests without it)
	}
	// A primitive of either interface is a traversal boundary: a batch
	// method falling back to singular Gets delegates exactly like a
	// wrapper forwarding to an inner MultiGet.
	isPrim := func(fn *types.Func) bool {
		for _, pi := range ifaces {
			if isStorePrimitive(fn, pi.iface, pi.names) {
				return true
			}
		}
		return false
	}

	// doubleCharges aggregates wrapper methods per charge site so one
	// finding (and one ignore directive) covers every delegating method
	// that reaches the same charge.
	type chargeSite struct {
		pos     token.Pos
		methods []string
	}
	doubleCharges := map[token.Pos]*chargeSite{}

	for _, named := range g.named {
		ptr := types.NewPointer(named)
		for _, pi := range ifaces {
			if !types.Implements(named, pi.iface) && !types.Implements(ptr, pi.iface) {
				continue
			}
			for i := 0; i < pi.iface.NumMethods(); i++ {
				m := pi.iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
				fn, ok := obj.(*types.Func)
				if !ok || fn == nil {
					continue
				}
				fi := g.funcs[fn]
				if fi == nil {
					continue // method body lives outside the program (embedded)
				}
				delegates := false
				var charges []token.Pos
				seenCharge := map[token.Pos]bool{}
				// Do not descend into delegated Store primitives (their charges
				// are theirs) or into the charge functions themselves.
				through := func(callee *types.Func) bool {
					return !isPrim(callee) && !isChargeFunc(callee)
				}
				g.walk(fn, through, func(callee *types.Func, _ *funcInfo, site callSite) {
					if isChargeFunc(callee) && !seenCharge[site.call.Pos()] {
						seenCharge[site.call.Pos()] = true
						charges = append(charges, site.call.Pos())
					}
					if callee != fn && isPrim(callee) {
						delegates = true
					}
				})
				methodName := shortName(named.Obj()) + "." + fn.Name()
				switch {
				case !delegates && len(charges) == 0:
					p.Reportf(fi.decl.Pos(), "%s primitive %s never reaches vclock.Charge; its simulated service time is zero (charge the cost model or delegate to a charging Store)", pi.kind, methodName)
				case delegates:
					for _, pos := range charges {
						cs := doubleCharges[pos]
						if cs == nil {
							cs = &chargeSite{pos: pos}
							doubleCharges[pos] = cs
						}
						cs.methods = append(cs.methods, methodName)
					}
				}
			}
		}
	}

	sites := make([]*chargeSite, 0, len(doubleCharges))
	for _, cs := range doubleCharges {
		sites = append(sites, cs)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	for _, cs := range sites {
		sort.Strings(cs.methods)
		cs.methods = dedupeStrings(cs.methods)
		p.Reportf(cs.pos, "charge reachable from delegating Store wrapper method(s) %s; the wrapped Store already charges, so this double-counts unless intended (//h2vet:ignore costcheck <reason>)", strings.Join(cs.methods, ", "))
	}
}

// objstoreInterface resolves a named interface type (Store, Batcher)
// from the objstore package in the program's universe.
func objstoreInterface(prog *Program, name string) *types.Interface {
	pkg := prog.lookupPackage("internal/objstore")
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// isStorePrimitive reports whether fn is a Store primitive: the interface
// method itself, or a method of that name on a type implementing Store.
func isStorePrimitive(fn *types.Func, iface *types.Interface, primNames map[string]bool) bool {
	if fn == nil || !primNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if r, ok := recv.Underlying().(*types.Interface); ok {
		return r == iface || types.Implements(recv, iface)
	}
	return types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface)
}

// dedupeStrings removes adjacent duplicates from a sorted slice.
func dedupeStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
