package main

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// costcheckAnalyzer enforces the cost-accounting invariant behind every
// figure the simulator emits: simulated service time is whatever
// vclock.Charge accumulates, so an objstore.Store primitive that never
// charges silently zeroes its cost, and a wrapper that both delegates to
// an inner Store and charges on its own double-counts it.
//
// Concretely, for every program type implementing objstore.Store and
// every interface primitive (Put, Get, GetRange, Head, Delete, Copy):
//
//   - a leaf implementation (one that does not delegate to another Store
//     primitive) must reach vclock.Charge/Fanout through the call graph;
//   - a wrapper (one that delegates) must not also reach a charge call on
//     its own frames — the inner implementation owns the cost. Wrappers
//     that model extra cost deliberately (chaos latency spikes, retry
//     backoff) annotate the single charge site with
//     //h2vet:ignore costcheck <reason>.
//
// Traversal stops at Store-primitive boundaries, so an inner
// implementation's own charges are never attributed to the wrapper.
var costcheckAnalyzer = &Analyzer{
	Name:       "costcheck",
	Doc:        "objstore.Store implementations charge vclock exactly once per operation",
	RunProgram: runCostcheck,
}

func runCostcheck(p *ProgramPass) {
	g := p.Prog.callGraph()
	iface := storeInterface(p.Prog)
	if iface == nil {
		return // module doesn't define objstore.Store (golden tests without it)
	}
	primNames := map[string]bool{}
	for i := 0; i < iface.NumMethods(); i++ {
		primNames[iface.Method(i).Name()] = true
	}
	isStorePrim := func(fn *types.Func) bool {
		return isStorePrimitive(fn, iface, primNames)
	}

	// doubleCharges aggregates wrapper methods per charge site so one
	// finding (and one ignore directive) covers every delegating method
	// that reaches the same charge.
	type chargeSite struct {
		pos     token.Pos
		methods []string
	}
	doubleCharges := map[token.Pos]*chargeSite{}

	for _, named := range g.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			fn, ok := obj.(*types.Func)
			if !ok || fn == nil {
				continue
			}
			fi := g.funcs[fn]
			if fi == nil {
				continue // method body lives outside the program (embedded)
			}
			delegates := false
			var charges []token.Pos
			seenCharge := map[token.Pos]bool{}
			// Do not descend into delegated Store primitives (their charges
			// are theirs) or into the charge functions themselves.
			through := func(callee *types.Func) bool {
				return !isStorePrim(callee) && !isChargeFunc(callee)
			}
			g.walk(fn, through, func(callee *types.Func, _ *funcInfo, site callSite) {
				if isChargeFunc(callee) && !seenCharge[site.call.Pos()] {
					seenCharge[site.call.Pos()] = true
					charges = append(charges, site.call.Pos())
				}
				if callee != fn && isStorePrim(callee) {
					delegates = true
				}
			})
			methodName := shortName(named.Obj()) + "." + fn.Name()
			switch {
			case !delegates && len(charges) == 0:
				p.Reportf(fi.decl.Pos(), "Store primitive %s never reaches vclock.Charge; its simulated service time is zero (charge the cost model or delegate to a charging Store)", methodName)
			case delegates:
				for _, pos := range charges {
					cs := doubleCharges[pos]
					if cs == nil {
						cs = &chargeSite{pos: pos}
						doubleCharges[pos] = cs
					}
					cs.methods = append(cs.methods, methodName)
				}
			}
		}
	}

	sites := make([]*chargeSite, 0, len(doubleCharges))
	for _, cs := range doubleCharges {
		sites = append(sites, cs)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	for _, cs := range sites {
		sort.Strings(cs.methods)
		cs.methods = dedupeStrings(cs.methods)
		p.Reportf(cs.pos, "charge reachable from delegating Store wrapper method(s) %s; the wrapped Store already charges, so this double-counts unless intended (//h2vet:ignore costcheck <reason>)", strings.Join(cs.methods, ", "))
	}
}

// storeInterface resolves the objstore.Store interface type in the
// program's universe.
func storeInterface(prog *Program) *types.Interface {
	pkg := prog.lookupPackage("internal/objstore")
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup("Store")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// isStorePrimitive reports whether fn is a Store primitive: the interface
// method itself, or a method of that name on a type implementing Store.
func isStorePrimitive(fn *types.Func, iface *types.Interface, primNames map[string]bool) bool {
	if fn == nil || !primNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if r, ok := recv.Underlying().(*types.Interface); ok {
		return r == iface || types.Implements(recv, iface)
	}
	return types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface)
}

// dedupeStrings removes adjacent duplicates from a sorted slice.
func dedupeStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
