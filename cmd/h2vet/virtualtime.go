package main

import (
	"go/ast"
	"strings"
)

// virtualtimeAnalyzer enforces the simulator's virtual-clock rule: code
// under internal/ must not read or wait on the wall clock. The paper's
// evaluation numbers are simulated operation times accumulated on
// internal/vclock, so a stray time.Now() silently corrupts every figure.
//
// Only *calls* are flagged. Storing time.Now as the default of an
// injectable `func() time.Time` field (the sanctioned edge idiom) is a
// plain value reference and passes. _test.go files are exempt: tests may
// use wall-clock deadlines around the simulated system.
var virtualtimeAnalyzer = &Analyzer{
	Name: "virtualtime",
	Doc:  "no time.Now/time.Since/time.Sleep calls inside internal/ packages",
	Run:  runVirtualtime,
}

// wallClockFuncs are the package time functions that read or wait on the
// wall clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Sleep": true,
	"Until": true,
}

func runVirtualtime(p *Pass) {
	if !strings.HasPrefix(p.RelPkgPath(), "internal/") {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !wallClockFuncs[name] || p.pkgQualifier(f, call) != "time" {
				return true
			}
			p.Reportf(call.Pos(), "call to time.%s in simulator package %s; charge internal/vclock or use an injected clock", name, p.RelPkgPath())
			return true
		})
	}
}
