package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// guardcheckAnalyzer is static race detection tuned to this repo's lock
// idioms. It infers a field -> mutex guard map per struct: a non-mutex
// field whose access sites hold the same sibling mutex class in the
// clear majority of cases (at least 2 sites and >= 75% of all sites) is
// considered guarded by it, and an explicit
//
//	//h2vet:guardedby <mutex>
//
// annotation on the field declaration (same line or the line above)
// seeds the map directly. Locksets are propagated through the CHA call
// graph — a helper that never locks but is only called with the lock
// held (the *Locked naming idiom) inherits the callers' lockset — and
// code inside a `go`-launched function literal starts from the empty
// lockset, because the spawner's locks are not held on the new
// goroutine. A diagnostic fires for every access to a guarded field
// that is reachable from some `go` statement without the guard held:
// exactly the accesses a concurrent traffic driver can race on.
var guardcheckAnalyzer = &Analyzer{
	Name:       "guardcheck",
	Doc:        "goroutine-reachable accesses to mutex-guarded struct fields hold the inferred or annotated guard",
	RunProgram: runGuardcheck,
}

// lockSpan is one static mutex-held region of a function body: from the
// Lock/RLock call to the matching direct Unlock, or to the end of the
// enclosing defer scope when the unlock is deferred or absent.
type lockSpan struct {
	cls        *types.Var
	start, end token.Pos
}

// goLit is a function literal launched directly by a `go` statement,
// with the statement's position as the race witness.
type goLit struct {
	lit   *ast.FuncLit
	goPos token.Pos
}

// funcLocks caches one function's lock spans and go-launched literal
// ranges for lockset queries.
type funcLocks struct {
	spans  []lockSpan
	goLits []goLit
}

// collectFuncLocks computes the lock spans of one declared function,
// function literals included, using the same span discipline as
// lockorder: deferred unlocks hold to scope end, direct unlocks close
// the span early.
func collectFuncLocks(fi *funcInfo) *funcLocks {
	info := fi.unit.info
	fl := &funcLocks{}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				fl.goLits = append(fl.goLits, goLit{lit: lit, goPos: g.Pos()})
			}
		}
		return true
	})
	for _, scope := range lockScopes(fi.decl) {
		type acq struct {
			cls      *types.Var
			pos, end token.Pos
		}
		var spans []acq
		type rel struct {
			cls *types.Var
			pos token.Pos
		}
		var unlocks []rel
		inspectShallow(scope, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cls, method, ok := mutexClass(info, call)
			if !ok {
				return true
			}
			switch method {
			case "Lock", "RLock":
				spans = append(spans, acq{cls: cls, pos: call.Pos(), end: scope.End()})
			case "Unlock", "RUnlock":
				unlocks = append(unlocks, rel{cls: cls, pos: call.Pos()})
			}
			return true
		})
		deferredAt := map[token.Pos]bool{}
		var blocks []ast.Node
		inspectShallow(scope, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.DeferStmt:
				deferredAt[n.(*ast.DeferStmt).Call.Pos()] = true
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
				blocks = append(blocks, n)
			}
			return true
		})
		// Innermost enclosing block of a position: an unlock only closes a
		// span opened in the same block. Unlocks in nested branches are
		// early exits (`if err != nil { mu.Unlock(); return err }`) — on
		// the fallthrough path the lock is still held.
		innermost := func(pos token.Pos) ast.Node {
			var best ast.Node
			for _, b := range blocks {
				if b.Pos() <= pos && pos <= b.End() && (best == nil || b.Pos() >= best.Pos()) {
					best = b
				}
			}
			return best
		}
		for i := range spans {
			for _, ul := range unlocks {
				if ul.cls == spans[i].cls && ul.pos > spans[i].pos && ul.pos < spans[i].end &&
					!deferredAt[ul.pos] && innermost(ul.pos) == innermost(spans[i].pos) {
					spans[i].end = ul.pos
				}
			}
			fl.spans = append(fl.spans, lockSpan{cls: spans[i].cls, start: spans[i].pos, end: spans[i].end})
		}
	}
	return fl
}

// litAt returns the innermost go-launched literal containing pos, or nil.
func (fl *funcLocks) litAt(pos token.Pos) *goLit {
	var innermost *goLit
	for i := range fl.goLits {
		l := &fl.goLits[i]
		if l.lit.Pos() <= pos && pos <= l.lit.End() {
			if innermost == nil || l.lit.Pos() > innermost.lit.Pos() {
				innermost = l
			}
		}
	}
	return innermost
}

// heldAt returns the mutex classes statically held at pos. Code inside a
// go-launched function literal runs on a fresh goroutine, so only spans
// opened inside the innermost such literal count there (fresh reports
// that case).
func (fl *funcLocks) heldAt(pos token.Pos) (held map[*types.Var]bool, fresh bool) {
	lit := fl.litAt(pos)
	held = map[*types.Var]bool{}
	for _, sp := range fl.spans {
		if sp.start >= pos || pos >= sp.end {
			continue
		}
		if lit != nil && (sp.start < lit.lit.Pos() || sp.start > lit.lit.End()) {
			continue
		}
		held[sp.cls] = true
	}
	return held, lit != nil
}

// guardedStruct is one program struct that declares at least one named
// sync.Mutex/RWMutex field and is therefore eligible for guard
// inference.
type guardedStruct struct {
	named   *types.Named
	mutexes []*types.Var // the struct's mutex fields, in declaration order
}

// guardAccess is one read or write of a tracked struct field.
type guardAccess struct {
	field *types.Var
	pos   token.Pos
	fn    *types.Func
}

// guardFact is the inference result for one field.
type guardFact struct {
	owner     *guardedStruct
	field     *types.Var
	guard     *types.Var // nil: no guard inferred or annotated
	annotated bool
	guarded   int // access sites holding guard
	total     int // all access sites
}

// guardAnalysis bundles everything guardcheck computes; -explain reuses
// it to print the inferred guard table.
type guardAnalysis struct {
	prog     *Program
	g        *callGraph
	owner    map[*types.Var]*guardedStruct       // non-mutex field -> declaring struct
	locks    map[*types.Func]*funcLocks          // per-function lock spans
	accesses []guardAccess                       // every tracked field access, sorted by position
	facts    map[*types.Var]*guardFact           // field -> guard fact
	entry    map[*types.Func]map[*types.Var]bool // locks held on every static entry (missing = never called)
	goEntry  map[*types.Func]map[*types.Var]bool // locks held on every goroutine-reachable entry (missing = unreachable)
	goFrom   map[*types.Func]token.Pos           // witness go statement per goroutine-reachable function
	annErrs  []Diagnostic                        // malformed //h2vet:guardedby annotations
}

type callEdge struct {
	caller *types.Func
	pos    token.Pos
}

// analyzeGuards runs the full guard inference over the program.
func analyzeGuards(prog *Program) *guardAnalysis {
	g := prog.callGraph()
	ga := &guardAnalysis{
		prog:  prog,
		g:     g,
		owner: map[*types.Var]*guardedStruct{},
		locks: map[*types.Func]*funcLocks{},
		facts: map[*types.Var]*guardFact{},
	}

	// Structs with named mutex fields; every other field of them is a
	// candidate guardee.
	for _, named := range g.named {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		gs := &guardedStruct{named: named}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); isSyncMutex(f.Type()) {
				gs.mutexes = append(gs.mutexes, f)
			}
		}
		if len(gs.mutexes) == 0 {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			ga.owner[st.Field(i)] = gs // mutexes included, so fieldName can render them
		}
	}

	fns := make([]*types.Func, 0, len(g.funcs))
	for fn := range g.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return objKey(fns[i]) < objKey(fns[j]) })

	for _, fn := range fns {
		ga.locks[fn] = collectFuncLocks(g.funcs[fn])
	}

	// Every access to a tracked field, in deterministic order.
	for _, fn := range fns {
		fi := g.funcs[fn]
		info := fi.unit.info
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			fv, ok := s.Obj().(*types.Var)
			if !ok || ga.owner[fv] == nil || isSyncMutex(fv.Type()) {
				return true
			}
			ga.accesses = append(ga.accesses, guardAccess{field: fv, pos: sel.Sel.Pos(), fn: fn})
			return true
		})
	}
	sort.Slice(ga.accesses, func(i, j int) bool { return ga.accesses[i].pos < ga.accesses[j].pos })

	inEdges := map[*types.Func][]callEdge{}
	for _, fn := range fns {
		for _, site := range g.funcs[fn].sites {
			for _, callee := range site.callees {
				if g.funcs[callee] != nil {
					inEdges[callee] = append(inEdges[callee], callEdge{caller: fn, pos: site.call.Pos()})
				}
			}
		}
	}

	ga.entry = ga.entryLocksets(fns, inEdges)
	ga.goEntry, ga.goFrom = ga.goroutineLocksets(fns, inEdges)
	ga.inferGuards()
	ga.applyAnnotations()
	return ga
}

// entryLocksets computes, for every function, the intersection over all
// static call sites of the locks held when it is entered. Functions with
// no static callers enter with nothing held. The meet-over-edges
// fixpoint only shrinks sets, so it terminates; call sites inside
// go-launched literals contribute only the locks acquired inside the
// literal (the spawner's locks are not held on the new goroutine).
func (ga *guardAnalysis) entryLocksets(fns []*types.Func, inEdges map[*types.Func][]callEdge) map[*types.Func]map[*types.Var]bool {
	entry := map[*types.Func]map[*types.Var]bool{}
	for _, fn := range fns {
		if len(inEdges[fn]) == 0 {
			entry[fn] = map[*types.Var]bool{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			edges := inEdges[fn]
			if len(edges) == 0 {
				continue
			}
			var newSet map[*types.Var]bool // nil: no resolved caller yet
			for _, e := range edges {
				held, fresh := ga.locks[e.caller].heldAt(e.pos)
				if !fresh {
					ce, ok := entry[e.caller]
					if !ok {
						continue
					}
					for cls := range ce {
						held[cls] = true
					}
				}
				if newSet == nil {
					newSet = held
				} else {
					newSet = intersectLocks(newSet, held)
				}
			}
			if newSet == nil {
				continue
			}
			if old, ok := entry[fn]; !ok || !locksEqual(old, newSet) {
				entry[fn] = newSet
				changed = true
			}
		}
	}
	return entry
}

// goroutineLocksets computes the same meet, but only over paths that
// start at a `go` statement: resolved `go f(...)` callees enter with the
// empty lockset, call sites inside go-launched literals seed their
// callees with the locks acquired inside the literal, and everything
// transitively called inherits the caller's goroutine lockset. The
// returned witness map names one spawning `go` statement (the smallest
// position) per reachable function for the diagnostic.
func (ga *guardAnalysis) goroutineLocksets(fns []*types.Func, inEdges map[*types.Func][]callEdge) (map[*types.Func]map[*types.Var]bool, map[*types.Func]token.Pos) {
	type seed struct {
		set     map[*types.Var]bool
		witness token.Pos
	}
	seeds := map[*types.Func][]seed{}
	for _, fn := range fns {
		fi := ga.g.funcs[fn]
		info := fi.unit.info
		fl := ga.locks[fn]
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if _, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
				return true // its call sites seed below, via heldAt freshness
			}
			for _, callee := range ga.g.calleesOf(info, g.Call) {
				if ga.g.funcs[callee] != nil {
					seeds[callee] = append(seeds[callee], seed{set: map[*types.Var]bool{}, witness: g.Pos()})
				}
			}
			return true
		})
		for _, site := range fi.sites {
			lit := fl.litAt(site.call.Pos())
			if lit == nil {
				continue
			}
			held, _ := fl.heldAt(site.call.Pos())
			for _, callee := range site.callees {
				if ga.g.funcs[callee] != nil {
					seeds[callee] = append(seeds[callee], seed{set: held, witness: lit.goPos})
				}
			}
		}
	}

	goEntry := map[*types.Func]map[*types.Var]bool{}
	goFrom := map[*types.Func]token.Pos{}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			var newSet map[*types.Var]bool
			witness := token.NoPos
			meet := func(s map[*types.Var]bool, w token.Pos) {
				if newSet == nil {
					newSet = cloneLocks(s)
				} else {
					newSet = intersectLocks(newSet, s)
				}
				if witness == token.NoPos || (w != token.NoPos && w < witness) {
					witness = w
				}
			}
			for _, sd := range seeds[fn] {
				meet(sd.set, sd.witness)
			}
			for _, e := range inEdges[fn] {
				held, fresh := ga.locks[e.caller].heldAt(e.pos)
				if fresh {
					continue // already a seed above
				}
				ce, ok := goEntry[e.caller]
				if !ok {
					continue
				}
				for cls := range ce {
					held[cls] = true
				}
				meet(held, goFrom[e.caller])
			}
			if newSet == nil {
				continue
			}
			if old, ok := goEntry[fn]; !ok || !locksEqual(old, newSet) || goFrom[fn] != witness {
				goEntry[fn] = newSet
				goFrom[fn] = witness
				changed = true
			}
		}
	}
	return goEntry, goFrom
}

// inferGuards decides, per field, whether the evidence supports a guard:
// the sibling mutex held at the most access sites wins when it covers at
// least 2 sites and at least 75% of them.
func (ga *guardAnalysis) inferGuards() {
	bySite := map[*types.Var][]guardAccess{}
	for _, acc := range ga.accesses {
		bySite[acc.field] = append(bySite[acc.field], acc)
	}
	fields := make([]*types.Var, 0, len(bySite))
	for f := range bySite {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return ga.fieldName(fields[i]) < ga.fieldName(fields[j]) })
	for _, field := range fields {
		gs := ga.owner[field]
		sites := bySite[field]
		fact := &guardFact{owner: gs, field: field, total: len(sites)}
		var best *types.Var
		bestCount := 0
		for _, m := range gs.mutexes {
			count := 0
			for _, acc := range sites {
				if ga.siteLocks(acc)[m] {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = m, count
			}
		}
		if best != nil && bestCount >= 2 && bestCount*4 >= len(sites)*3 {
			fact.guard, fact.guarded = best, bestCount
		}
		ga.facts[field] = fact
	}
}

// siteLocks is the effective lockset at one access: the local spans
// union the function's entry lockset, or only the literal-local spans
// inside a go-launched literal.
func (ga *guardAnalysis) siteLocks(acc guardAccess) map[*types.Var]bool {
	held, fresh := ga.locks[acc.fn].heldAt(acc.pos)
	if fresh {
		return held
	}
	for cls := range ga.entry[acc.fn] {
		held[cls] = true
	}
	return held
}

// applyAnnotations seeds the guard map from //h2vet:guardedby directives
// on field declarations, overriding inference, and records malformed
// annotations as diagnostics.
func (ga *guardAnalysis) applyAnnotations() {
	dirs := collectLineDirectives(ga.prog.source, "guardedby")
	for _, u := range ga.prog.source {
		for _, file := range u.files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fieldDecl := range st.Fields.List {
					for _, name := range fieldDecl.Names {
						pos := u.fset.Position(name.Pos())
						mutexName, ok := directiveFor(dirs, pos.Filename, pos.Line)
						if !ok {
							continue
						}
						fv, _ := u.info.Defs[name].(*types.Var)
						if fv == nil {
							continue
						}
						gs := ga.owner[fv]
						var guard *types.Var
						if gs != nil {
							for _, m := range gs.mutexes {
								if m.Name() == mutexName {
									guard = m
									break
								}
							}
						}
						if guard == nil {
							ga.annErrs = append(ga.annErrs, Diagnostic{
								Pos:  pos,
								Rule: "guardcheck",
								Msg: fmt.Sprintf("//h2vet:guardedby %s: the declaring struct has no sync.Mutex/RWMutex field named %q",
									mutexName, mutexName),
							})
							continue
						}
						fact := ga.facts[fv]
						if fact == nil {
							fact = &guardFact{owner: gs, field: fv}
							ga.facts[fv] = fact
						}
						guarded := 0
						for _, acc := range ga.accesses {
							if acc.field == fv && ga.siteLocks(acc)[guard] {
								guarded++
							}
						}
						fact.guard, fact.annotated, fact.guarded = guard, true, guarded
					}
				}
				return true
			})
		}
	}
}

// fieldName renders pkg.Type.field for a tracked field.
func (ga *guardAnalysis) fieldName(f *types.Var) string {
	gs := ga.owner[f]
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Name()
	}
	if gs == nil {
		return pkg + "." + f.Name()
	}
	return fmt.Sprintf("%s.%s.%s", pkg, gs.named.Obj().Name(), f.Name())
}

func runGuardcheck(p *ProgramPass) {
	ga := analyzeGuards(p.Prog)
	for _, d := range ga.annErrs {
		p.ReportfAt(d.Pos, "%s", d.Msg)
	}
	for _, acc := range ga.accesses {
		fact := ga.facts[acc.field]
		if fact == nil || fact.guard == nil {
			continue
		}
		fl := ga.locks[acc.fn]
		held, fresh := fl.heldAt(acc.pos)
		var witness token.Pos
		if fresh {
			witness = fl.litAt(acc.pos).goPos
		} else {
			ge, ok := ga.goEntry[acc.fn]
			if !ok {
				continue // not reachable from any go statement
			}
			for cls := range ge {
				held[cls] = true
			}
			witness = ga.goFrom[acc.fn]
		}
		if held[fact.guard] {
			continue
		}
		origin := fmt.Sprintf("inferred: held at %d of %d sites", fact.guarded, fact.total)
		if fact.annotated {
			origin = "//h2vet:guardedby annotation"
		}
		wp := p.Prog.fset.Position(witness)
		p.Reportf(acc.pos, "field %s accessed without its guard %s (%s) on a path reachable from the goroutine launched at %s:%d",
			ga.fieldName(acc.field), ga.fieldName(fact.guard), origin, wp.Filename, wp.Line)
	}
}

// intersectLocks returns a \cap b (a is consumed).
func intersectLocks(a, b map[*types.Var]bool) map[*types.Var]bool {
	for cls := range a {
		if !b[cls] {
			delete(a, cls)
		}
	}
	return a
}

// cloneLocks copies a lockset.
func cloneLocks(s map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(s))
	for cls := range s {
		out[cls] = true
	}
	return out
}

func locksEqual(a, b map[*types.Var]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for cls := range a {
		if !b[cls] {
			return false
		}
	}
	return true
}
