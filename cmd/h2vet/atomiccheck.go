package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// atomiccheckAnalyzer enforces atomic-access consistency: once a struct
// field is accessed through the function-style sync/atomic API anywhere
// in the program (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&s.gen),
// ...), every access to that field in code a goroutine can execute must
// also be atomic. A plain read or write of the same field in
// goroutine-reachable code — the body of a go-launched function literal,
// or any function the call graph reaches from a go statement — races
// with the atomic side: the atomic half orders nothing for the plain
// half, and the race detector only catches the interleavings the test
// happens to schedule.
//
// The repo's own code uses the typed atomics (atomic.Int64, atomic.Bool)
// whose method set makes plain access impossible, so this rule exists to
// keep it that way: the finding text points at the typed forms first.
// Purely sequential plain access (a constructor initializing the field
// before the struct is shared) is deliberately exempt.
var atomiccheckAnalyzer = &Analyzer{
	Name:       "atomiccheck",
	Doc:        "fields accessed via sync/atomic are accessed atomically everywhere goroutine-reachable code touches them",
	RunProgram: runAtomiccheck,
}

// atomicUse records how a field entered the atomic set.
type atomicUse struct {
	fn  string    // atomic.AddInt64, ...
	pos token.Pos // first atomic call site
}

func runAtomiccheck(p *ProgramPass) {
	g := p.Prog.callGraph()
	fset := p.Prog.fset

	// Pass 1: the atomic field set — fields whose address is taken as the
	// pointer argument of a sync/atomic call — and the selector positions
	// of those sanctioned uses (so pass 3 does not flag them).
	atomicFields := map[*types.Var]atomicUse{}
	sanctioned := map[token.Pos]bool{}
	fns := sortedGraphFuncs(g)
	for _, fn := range fns {
		fi := g.funcs[fn]
		info := fi.unit.info
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := atomicFuncName(info, call)
			if name == "" || len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := selectedField(info, sel)
			if field == nil {
				return true
			}
			sanctioned[sel.Sel.Pos()] = true
			if _, seen := atomicFields[field]; !seen {
				atomicFields[field] = atomicUse{fn: "atomic." + name, pos: call.Pos()}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: goroutine-reachable code. Named functions are collected by
	// BFS from every go statement's resolved callees; go-launched literal
	// bodies are recorded as position spans, and call sites inside them
	// seed the BFS too (mirroring leakcheck's traversal).
	reached := map[*types.Func]token.Pos{} // fn -> witness go stmt
	type litSpan struct {
		lo, hi token.Pos
		gopos  token.Pos
	}
	spansByFile := map[string][]litSpan{}
	var queue []*types.Func
	enqueue := func(callee *types.Func, gopos token.Pos) {
		if g.funcs[callee] == nil {
			return
		}
		if _, ok := reached[callee]; ok {
			return
		}
		reached[callee] = gopos
		queue = append(queue, callee)
	}
	for _, fn := range fns {
		fi := g.funcs[fn]
		info := fi.unit.info
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			gostmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := gostmt.Call.Fun.(*ast.FuncLit); ok {
				file := fset.Position(lit.Pos()).Filename
				spansByFile[file] = append(spansByFile[file], litSpan{lit.Pos(), lit.End(), gostmt.Pos()})
				for _, site := range fi.sites {
					if site.call.Pos() < lit.Pos() || site.call.Pos() > lit.End() {
						continue
					}
					for _, callee := range site.callees {
						enqueue(callee, gostmt.Pos())
					}
				}
			} else {
				for _, callee := range g.calleesOf(info, gostmt.Call) {
					enqueue(callee, gostmt.Pos())
				}
			}
			return true
		})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		gopos := reached[cur]
		for _, site := range g.funcs[cur].sites {
			for _, callee := range site.callees {
				enqueue(callee, gopos)
			}
		}
	}

	// Pass 3: plain accesses of atomic fields in goroutine-reachable
	// code. The sanctioned &field positions from pass 1 are exempt.
	goWitness := func(fi *funcInfo, fn *types.Func, pos token.Pos) (token.Pos, bool) {
		file := fset.Position(pos).Filename
		for _, span := range spansByFile[file] {
			if span.lo <= pos && pos <= span.hi {
				return span.gopos, true
			}
		}
		if w, ok := reached[fn]; ok {
			return w, true
		}
		return token.NoPos, false
	}
	for _, fn := range fns {
		fi := g.funcs[fn]
		info := fi.unit.info
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := selectedField(info, sel)
			if field == nil || sanctioned[sel.Sel.Pos()] {
				return true
			}
			use, ok := atomicFields[field]
			if !ok {
				return true
			}
			witness, ok := goWitness(fi, fn, sel.Pos())
			if !ok {
				return true
			}
			up := fset.Position(use.pos)
			wp := fset.Position(witness)
			p.Reportf(sel.Pos(), "field %s is updated with %s at %s:%d but accessed plainly here, in code reachable from the goroutine launched at %s:%d; mixed atomic/plain access is a data race (use the typed atomic.%s, or make every access atomic)",
				fieldDisplayName(field), use.fn, up.Filename, up.Line, wp.Filename, wp.Line, typedAtomicFor(field.Type()))
			return true
		})
	}
}

// sortedGraphFuncs returns the graph's functions in deterministic order.
func sortedGraphFuncs(g *callGraph) []*types.Func {
	fns := make([]*types.Func, 0, len(g.funcs))
	for fn := range g.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return objKey(fns[i]) < objKey(fns[j]) })
	return fns
}

// atomicFuncName returns the sync/atomic function name for a call
// (AddInt64, LoadUint64, StorePointer, CompareAndSwapInt32, ...), or "".
func atomicFuncName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	// Methods of the typed atomics also live in sync/atomic; only the
	// function-style API takes a pointer argument.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return fn.Name()
		}
	}
	return ""
}

// selectedField resolves a selector to the struct field it denotes.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// fieldDisplayName renders pkg.Type.field for diagnostics, matching
// guardcheck's field naming.
func fieldDisplayName(field *types.Var) string {
	name := field.Name()
	if field.Pkg() != nil {
		// Find the named struct owning the field for a qualified name.
		scope := field.Pkg().Scope()
		for _, tn := range scope.Names() {
			obj, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == field {
					return field.Pkg().Name() + "." + obj.Name() + "." + name
				}
			}
		}
		return field.Pkg().Name() + "." + name
	}
	return name
}

// typedAtomicFor suggests the typed atomic replacing a function-style use.
func typedAtomicFor(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64, types.Int:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64, types.Uint, types.Uintptr:
			return "Uint64"
		}
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return "Pointer[T]"
	}
	return "Value"
}
