package main

import (
	"strings"
	"testing"
)

// ---------------------------------------------------------------------------
// poolcheck goldens
// ---------------------------------------------------------------------------

func TestPoolcheck(t *testing.T) {
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			// The repo's blessed codec idiom: Get, alias through an
			// append-like call, clear, truncate back into the scratch, Put,
			// return the unrelated output buffer.
			name: "codec idiom clean",
			impl: `package fake

import "sync"

var scratch = sync.Pool{New: func() any { s := make([]string, 0, 8); return &s }}

func appendAll(dst []string) []string { return append(dst, "x") }

func Encode(buf []byte) []byte {
	sp := scratch.Get().(*[]string)
	names := appendAll((*sp)[:0])
	for _, n := range names {
		buf = append(buf, n...)
	}
	clear(names)
	*sp = names[:0]
	scratch.Put(sp)
	return buf
}
`,
			want: nil,
		},
		{
			// A deferred Put covers every path, including early error
			// returns; pointer-free scratch needs no clear.
			name: "deferred put clean",
			impl: `package fake

import "sync"

var pool = sync.Pool{New: func() any { return new([64]int) }}

func Sum(fail bool) (int, error) {
	buf := pool.Get().(*[64]int)
	defer pool.Put(buf)
	if fail {
		return 0, errFail
	}
	return buf[0], nil
}

var errFail = error(nil)
`,
			want: nil,
		},
		{
			// A success return on one branch misses the Put: the scratch
			// leaks and the pool degrades to allocation.
			name: "missing put on success path",
			impl: `package fake

import "sync"

var pool = sync.Pool{New: func() any { return new([64]int) }}

func Sum(skip bool) int {
	buf := pool.Get().(*[64]int)
	if skip {
		return 0
	}
	n := buf[0]
	pool.Put(buf)
	return n
}
`,
			want: []string{
				"internal/fake/impl.go:8:9: poolcheck: scratch from pool.Get is not returned on every non-error path: the path exiting at internal/fake/impl.go:10 misses pool.Put (defer the Put or cover every return)",
			},
		},
		{
			// Error-path returns are exempt: losing a pool entry on the
			// error path is harmless, and forcing a Put there costs clarity.
			name: "error path exempt",
			impl: `package fake

import (
	"errors"
	"sync"
)

var pool = sync.Pool{New: func() any { return new([64]int) }}

func Sum(fail bool) (int, error) {
	buf := pool.Get().(*[64]int)
	if fail {
		return 0, errors.New("boom")
	}
	n := buf[0]
	pool.Put(buf)
	return n, nil
}
`,
			want: nil,
		},
		{
			// Returning the scratch (or an alias of it) hands pooled memory
			// to the caller while the pool is free to recycle it.
			name: "escape via return",
			impl: `package fake

import "sync"

var pool = sync.Pool{New: func() any { s := make([]byte, 0, 64); return &s }}

func Bytes() []byte {
	sp := pool.Get().(*[]byte)
	out := (*sp)[:0]
	out = append(out, 'x')
	pool.Put(sp)
	return out
}
`,
			want: []string{
				"internal/fake/impl.go:12:2: poolcheck: pooled scratch from pool.Get escapes via return; the pool may recycle it under the caller (copy it out, or do not pool it)",
				"internal/fake/impl.go:12:9: poolcheck: pooled scratch out used after pool.Put at internal/fake/impl.go:11 returned it; the pool may already have handed it to another goroutine",
			},
		},
		{
			// Storing an alias into a field outlives the frame.
			name: "escape via field store",
			impl: `package fake

import "sync"

var pool = sync.Pool{New: func() any { return new([64]int) }}

type Cache struct{ last *[64]int }

func (c *Cache) Fill() {
	buf := pool.Get().(*[64]int)
	c.last = buf
	pool.Put(buf)
}
`,
			want: []string{
				"internal/fake/impl.go:11:2: poolcheck: pooled scratch from pool.Get escapes via store to field c.last; the reference outlives the function while the pool recycles the memory",
			},
		},
		{
			// A goroutine capturing the scratch races against the pool.
			name: "escape via goroutine",
			impl: `package fake

import "sync"

var pool = sync.Pool{New: func() any { return new([64]int) }}

func Spawn(done chan struct{}) {
	buf := pool.Get().(*[64]int)
	go func() {
		buf[0] = 1
		close(done)
	}()
	pool.Put(buf)
}
`,
			want: []string{
				"internal/fake/impl.go:9:2: poolcheck: pooled scratch from pool.Get is handed to a goroutine; the pool may recycle it concurrently (copy, or let the goroutine own its own Get/Put)",
			},
		},
		{
			// Pointer-holding scratch pooled dirty pins every reference it
			// accumulated against the GC.
			name: "missing clear for pointer scratch",
			impl: `package fake

import "sync"

var pool = sync.Pool{New: func() any { s := make([]string, 0, 8); return &s }}

func Collect(in []string) int {
	sp := pool.Get().(*[]string)
	names := append((*sp)[:0], in...)
	n := len(names)
	*sp = names[:0]
	pool.Put(sp)
	return n
}
`,
			want: []string{
				"internal/fake/impl.go:8:8: poolcheck: pooled *[]string holds pointers; clear it (or call Reset) between pool.Get and Put so the pool cannot pin references for the GC",
			},
		},
		{
			// Returning scratch to a different pool corrupts both pools.
			name: "cross-pool put",
			impl: `package fake

import "sync"

var small = sync.Pool{New: func() any { return new([8]int) }}
var big = sync.Pool{New: func() any { return new([8]int) }}

func Mix() {
	buf := small.Get().(*[8]int)
	big.Put(buf)
}
`,
			want: []string{
				"internal/fake/impl.go:9:9: poolcheck: scratch from small.Get is never returned with small.Put; the pool degrades to plain allocation (defer the Put at the Get site)",
				"internal/fake/impl.go:10:2: poolcheck: scratch from small.Get is returned to a different pool big; cross-pool Put corrupts both pools' size classes",
			},
		},
		{
			// A Get whose result is never bound cannot be audited.
			name: "unbound get",
			impl: `package fake

import "sync"

var pool = sync.Pool{New: func() any { return new([8]int) }}

func Peek() int {
	return pool.Get().(*[8]int)[0]
}
`,
			want: []string{
				"internal/fake/impl.go:8:9: poolcheck: sync.Pool Get result is not bound to a variable; bind it so the matching Put (and the escape contract) is checkable",
			},
		},
		{
			// An ignore directive documents a deliberate ownership transfer.
			name: "ignore directive",
			impl: `package fake

import "sync"

var pool = sync.Pool{New: func() any { return new([8]int) }}

func Handoff() *[8]int {
	buf := pool.Get().(*[8]int)
	//h2vet:ignore poolcheck ownership transfers to the caller, which Puts
	return buf
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, poolcheckAnalyzer, map[string]string{
				"internal/fake/impl.go": tc.impl,
			})
			expectDiags(t, got, tc.want)
		})
	}
}

// ---------------------------------------------------------------------------
// ctxcheck goldens
// ---------------------------------------------------------------------------

// miniObjstoreCtx mirrors the real Store's context-first signatures.
const miniObjstoreCtx = `package objstore

import "context"

type Store interface {
	Put(ctx context.Context, name string, data []byte) error
	Get(ctx context.Context, name string) ([]byte, error)
}
`

func TestCtxcheck(t *testing.T) {
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			// Deriving from the caller's parameter — directly or through
			// WithTimeout — is the contract.
			name: "derived from parameter clean",
			impl: `package fake

import (
	"context"
	"time"

	"github.com/h2cloud/h2cloud/internal/objstore"
)

func Fetch(ctx context.Context, s objstore.Store) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	_, err := s.Get(tctx, "a")
	return err
}
`,
			want: nil,
		},
		{
			name: "background root flagged",
			impl: `package fake

import "context"

func Root() context.Context {
	return context.Background()
}
`,
			want: []string{
				"internal/fake/impl.go:6:9: ctxcheck: context.Background() in internal/ severs cancellation from the caller; accept a ctx parameter and derive from it (drivers own the root; //h2vet:ignore ctxcheck <reason> for deliberate harness roots)",
			},
		},
		{
			name: "todo root flagged",
			impl: `package fake

import "context"

func Root() context.Context {
	return context.TODO()
}
`,
			want: []string{
				"internal/fake/impl.go:6:9: ctxcheck: context.TODO() in internal/ severs cancellation from the caller; accept a ctx parameter and derive from it (drivers own the root; //h2vet:ignore ctxcheck <reason> for deliberate harness roots)",
			},
		},
		{
			name: "undeclared WithoutCancel flagged, durable clean",
			impl: `package fake

import "context"

func Detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

func DurableBracket(ctx context.Context) context.Context {
	//h2vet:durable GC drain must finish once the tombstone landed
	return context.WithoutCancel(ctx)
}
`,
			want: []string{
				"internal/fake/impl.go:6:9: ctxcheck: context.WithoutCancel detaches this work from the caller's cancellation; declare the durable bracket with //h2vet:durable <reason> (GC drain and scrub brackets are the intended uses) or propagate ctx unchanged",
			},
		},
		{
			name: "nil context at I/O call flagged",
			impl: `package fake

import "github.com/h2cloud/h2cloud/internal/objstore"

func Fetch(s objstore.Store) error {
	_, err := s.Get(nil, "a")
	return err
}
`,
			want: []string{
				"internal/fake/impl.go:6:12: ctxcheck: objstore Get call receives a nil context; pass the caller's ctx so cancellation reaches the I/O layer",
			},
		},
		{
			name: "package-level context at I/O call flagged",
			impl: `package fake

import (
	"context"

	"github.com/h2cloud/h2cloud/internal/objstore"
)

var bgCtx context.Context

func Fetch(s objstore.Store) error {
	_, err := s.Get(bgCtx, "a")
	return err
}
`,
			want: []string{
				"internal/fake/impl.go:12:12: ctxcheck: objstore Get call receives a package-level context; thread the caller's ctx parameter instead so cancellation propagates per request",
			},
		},
		{
			// Test files are scaffolding: roots there are the norm.
			name: "test files exempt",
			impl: `package fake

import "context"

func helper() context.Context {
	return context.Background()
}
`,
			want: nil,
		},
		{
			name: "ignore directive on harness root",
			impl: `package fake

import "context"

//h2vet:ignore ctxcheck bench harness owns its root context
func Root() context.Context { return context.Background() }
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{
				"internal/objstore/objstore.go": miniObjstoreCtx,
			}
			if tc.name == "test files exempt" {
				files["internal/fake/impl_test.go"] = tc.impl
			} else {
				files["internal/fake/impl.go"] = tc.impl
			}
			got := checkProgram(t, ctxcheckAnalyzer, files)
			expectDiags(t, got, tc.want)
		})
	}
}

// ---------------------------------------------------------------------------
// atomiccheck goldens
// ---------------------------------------------------------------------------

func TestAtomiccheck(t *testing.T) {
	cases := []struct {
		name string
		impl string
		want []string
	}{
		{
			// The mixed-access race: incremented atomically from a
			// goroutine, read plainly inside another go-launched literal.
			name: "plain read in goroutine flagged",
			impl: `package fake

import "sync/atomic"

type Counter struct{ n int64 }

func (c *Counter) Run(done chan struct{}) {
	go func() {
		atomic.AddInt64(&c.n, 1)
	}()
	go func() {
		_ = c.n
		close(done)
	}()
}
`,
			want: []string{
				"internal/fake/impl.go:12:7: atomiccheck: field fake.Counter.n is updated with atomic.AddInt64 at internal/fake/impl.go:9 but accessed plainly here, in code reachable from the goroutine launched at internal/fake/impl.go:11; mixed atomic/plain access is a data race (use the typed atomic.Int64, or make every access atomic)",
			},
		},
		{
			// Reachability flows through the call graph: the plain access
			// lives two calls below the go statement.
			name: "plain access reachable through callees flagged",
			impl: `package fake

import "sync/atomic"

type Counter struct{ n int64 }

func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }

func (c *Counter) drain() { c.step() }

func (c *Counter) step() { c.n++ }

func Spawn(c *Counter) {
	go c.drain()
	c.Inc()
}
`,
			want: []string{
				"internal/fake/impl.go:11:28: atomiccheck: field fake.Counter.n is updated with atomic.AddInt64 at internal/fake/impl.go:7 but accessed plainly here, in code reachable from the goroutine launched at internal/fake/impl.go:14; mixed atomic/plain access is a data race (use the typed atomic.Int64, or make every access atomic)",
			},
		},
		{
			// Sequential initialization before the struct is shared is the
			// deliberate exemption.
			name: "sequential plain access clean",
			impl: `package fake

import "sync/atomic"

type Counter struct{ n int64 }

func New(seed int64) *Counter {
	c := &Counter{}
	c.n = seed
	return c
}

func (c *Counter) Inc(done chan struct{}) {
	go func() {
		atomic.AddInt64(&c.n, 1)
		close(done)
	}()
}
`,
			want: nil,
		},
		{
			// All-atomic access is the fix; no finding.
			name: "consistent atomic access clean",
			impl: `package fake

import "sync/atomic"

type Counter struct{ n int64 }

func (c *Counter) Run(done chan struct{}) {
	go func() {
		atomic.AddInt64(&c.n, 1)
	}()
	go func() {
		_ = atomic.LoadInt64(&c.n)
		close(done)
	}()
}
`,
			want: nil,
		},
		{
			name: "ignore directive",
			impl: `package fake

import "sync/atomic"

type Counter struct{ n int64 }

func (c *Counter) Run(done chan struct{}) {
	go func() {
		atomic.AddInt64(&c.n, 1)
	}()
	go func() {
		//h2vet:ignore atomiccheck read is approximate by design; torn reads acceptable
		_ = c.n
		close(done)
	}()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkProgram(t, atomiccheckAnalyzer, map[string]string{
				"internal/fake/impl.go": tc.impl,
			})
			expectDiags(t, got, tc.want)
		})
	}
}

// ---------------------------------------------------------------------------
// RTA precision goldens: the same program with and without an
// instantiation of the suspect type flips the finding.
// ---------------------------------------------------------------------------

func TestRTAPrunesUninstantiatedImplementations(t *testing.T) {
	const base = `package fake

type Runner interface{ Run() }

type Good struct{}

func (Good) Run() {}

type Bad struct{}

func (Bad) Run() {
	for {
	}
}

func Spawn(r Runner) { go r.Run() }
`
	t.Run("uninstantiated impl pruned", func(t *testing.T) {
		got := checkProgram(t, leakcheckAnalyzer, map[string]string{
			"internal/fake/impl.go": base,
			"internal/fake/use.go": `package fake

func Use() { Spawn(Good{}) }
`,
		})
		// Bad is never instantiated, so RTA drops the go r.Run() -> Bad.Run
		// edge and its endless loop cannot leak.
		expectDiags(t, got, nil)
	})
	t.Run("instantiated impl keeps the edge", func(t *testing.T) {
		got := checkProgram(t, leakcheckAnalyzer, map[string]string{
			"internal/fake/impl.go": base,
			"internal/fake/use.go": `package fake

func Use() { Spawn(Bad{}) }
`,
		})
		expectDiags(t, got, []string{
			"internal/fake/impl.go:16:24: leakcheck: goroutine never exits: the unconditional loop at internal/fake/impl.go:12 has no return or loop break; return on <-ctx.Done(), exit on a closed channel, or bound the loop",
		})
	})
}

// TestRTAStats exercises -explain callgraph's counters on a mini module:
// the CHA graph must strictly exceed the RTA graph when an
// implementation is uninstantiated.
func TestRTAStats(t *testing.T) {
	files := map[string]string{
		"internal/fake/impl.go": `package fake

type Runner interface{ Run() }

type Good struct{}

func (Good) Run() {}

type Bad struct{}

func (Bad) Run() {}

func Spawn(r Runner) { go r.Run() }

func Use() { Spawn(Good{}) }
`,
	}
	prog := buildTestProgram(t, files)
	cha := buildCallGraphMode(prog, true)
	rta := buildCallGraphMode(prog, false)
	if cha.stats.chaEdges <= rta.stats.rtaEdges {
		t.Fatalf("expected CHA edges (%d) > RTA edges (%d)", cha.stats.chaEdges, rta.stats.rtaEdges)
	}
	if rta.stats.instantiated >= rta.stats.named {
		t.Fatalf("expected some uninstantiated type: instantiated %d, named %d", rta.stats.instantiated, rta.stats.named)
	}
	var sb strings.Builder
	explainCallgraph(&sb, prog)
	out := sb.String()
	for _, want := range []string{"edges (CHA)", "edges (RTA)", "pruned", "finding precision"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain callgraph output missing %q:\n%s", want, out)
		}
	}
}
