package main

import (
	"go/ast"
	"go/token"
	"strings"
)

// backoffcheckAnalyzer enforces the retry-path half of the virtual-clock
// rule: a retry or polling loop inside internal/ must never wait on the
// wall clock. Backoff belongs on the virtual clock (vclock.Charge), where
// it is charged to the simulated service time and two same-seed runs stay
// byte-identical; a real time.Sleep (or a timer wait) in a loop both
// stalls the test suite and hides the backoff cost from every figure.
//
// Flagged: calls to time.Sleep, time.After, time.Tick, time.NewTimer, and
// time.AfterFunc lexically inside a for/range statement (including inside
// function literals launched from the loop). time.NewTicker is allowed —
// long-lived maintenance tickers (gossip, repair) are driver-side idiom,
// not per-attempt backoff. _test.go files are exempt.
var backoffcheckAnalyzer = &Analyzer{
	Name: "backoffcheck",
	Doc:  "no time.Sleep/time.After/timer waits inside loops in internal/ packages; charge backoff to internal/vclock",
	Run:  runBackoffcheck,
}

// loopWaitFuncs are the package time functions that block on (or schedule
// against) the wall clock, per-call.
var loopWaitFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"AfterFunc": true,
}

func runBackoffcheck(p *Pass) {
	if !strings.HasPrefix(p.RelPkgPath(), "internal/") {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		reported := map[token.Pos]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				p.checkLoopBody(f, n, reported)
			}
			return true
		})
	}
}

// checkLoopBody flags wall-clock waits anywhere under loop, deduplicating
// calls already reported from an enclosing loop.
func (p *Pass) checkLoopBody(f *ast.File, loop ast.Node, reported map[token.Pos]bool) {
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !loopWaitFuncs[name] || p.pkgQualifier(f, call) != "time" {
			return true
		}
		if reported[call.Pos()] {
			return true
		}
		reported[call.Pos()] = true
		p.Reportf(call.Pos(), "call to time.%s inside a loop in simulator package %s; charge backoff to internal/vclock (vclock.Charge), never the wall clock", name, p.RelPkgPath())
		return true
	})
}
