package main

import (
	"strings"
	"testing"
)

// The v4 dataflow rules must be registered, listed, and documented: the
// rule set is the contract CI's lint job runs, so a rule that compiles
// but is not wired into allAnalyzers would silently stop checking.
func TestV4RulesRegistered(t *testing.T) {
	want := []string{"poolcheck", "ctxcheck", "atomiccheck"}
	byName := map[string]*Analyzer{}
	for _, a := range allAnalyzers() {
		byName[a.Name] = a
	}
	for _, name := range want {
		a := byName[name]
		if a == nil {
			t.Errorf("rule %s not registered in allAnalyzers", name)
			continue
		}
		if a.RunProgram == nil {
			t.Errorf("rule %s must be whole-program (RunProgram)", name)
		}
		if strings.TrimSpace(explainTexts[name]) == "" {
			t.Errorf("rule %s has no -explain text", name)
		}
	}
	// deadignore must stay last so it sees every other rule's directive
	// usage.
	all := allAnalyzers()
	if all[len(all)-1].Name != "deadignore" {
		t.Errorf("deadignore must be the final analyzer, got %s", all[len(all)-1].Name)
	}
}

// callgraph is a pseudo-rule: not an analyzer, but -explain must accept
// it and document the CHA->RTA refinement.
func TestExplainCallgraphEntry(t *testing.T) {
	if strings.TrimSpace(explainTexts["callgraph"]) == "" {
		t.Fatal("explainTexts has no callgraph entry")
	}
	if analyzerByName("callgraph") != nil {
		t.Fatal("callgraph must not be a registered analyzer")
	}
	var sb strings.Builder
	explain(&sb, "callgraph", nil, "")
	out := sb.String()
	for _, want := range []string{"Rapid Type Analysis", "instantiated"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain(callgraph) missing %q:\n%s", want, out)
		}
	}
}

// The explain texts for the v4 rules must document their directives and
// escapes, so `h2vet -explain <rule>` is a sufficient fix guide.
func TestV4ExplainTextsMentionDirectives(t *testing.T) {
	cases := map[string][]string{
		"poolcheck":   {"Put", "clear", "escape", "//h2vet:ignore poolcheck"},
		"ctxcheck":    {"context.Background", "WithoutCancel", "//h2vet:durable", "//h2vet:ignore ctxcheck"},
		"atomiccheck": {"sync/atomic", "go statement", "atomic.Int64"},
	}
	for rule, wants := range cases {
		text := explainTexts[rule]
		for _, want := range wants {
			if !strings.Contains(text, want) {
				t.Errorf("explain text for %s missing %q", rule, want)
			}
		}
	}
}
