package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// unit is one type-checked bundle of files: a package together with its
// in-package _test.go files, or an external package_test package.
type unit struct {
	pkgPath string // import path (module path + relative directory)
	module  string // module path from go.mod
	dir     string
	fset    *token.FileSet
	files   []*ast.File
	info    *types.Info
}

// load expands the directory patterns (either a directory or dir/...),
// parses every package found, and type-checks each with the stdlib
// source importer so analyzers get full type information without any
// external dependency. Type errors are reported as warnings, not fatal:
// `go build` owns compile errors, h2vet owns invariants.
func load(patterns []string) ([]*unit, []string, error) {
	root, module, err := moduleRoot()
	if err != nil {
		return nil, nil, err
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var units []*unit
	var warnings []string
	for _, dir := range dirs {
		pkgs, warns, err := parseDir(fset, dir)
		if err != nil {
			return nil, nil, err
		}
		warnings = append(warnings, warns...)
		pkgPath := importPath(root, module, dir)
		names := make([]string, 0, len(pkgs))
		for name := range pkgs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			u := &unit{pkgPath: pkgPath, module: module, dir: dir, fset: fset, files: pkgs[name]}
			u.info = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
			}
			conf := types.Config{
				Importer: imp,
				Error:    func(err error) { warnings = append(warnings, err.Error()) },
			}
			// The returned error repeats the first collected warning,
			// so the lenient check discards it.
			conf.Check(pkgPath, fset, u.files, u.info)
			units = append(units, u)
		}
	}
	return units, warnings, nil
}

// moduleRoot walks up from the working directory to go.mod and returns
// the directory and the module path it declares.
func moduleRoot() (dir, module string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("go.mod not found above working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves command-line patterns to a sorted list of
// directories containing Go files. "dir/..." walks recursively.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = filepath.Clean(strings.TrimSuffix(base, "/"))
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor" || name == "bin") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Clean(pat)
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("%s: not a directory", pat)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// parseDir parses every .go file in dir and groups the files into
// type-check units: the primary package (plus its in-package tests) and,
// if present, the external _test package.
func parseDir(fset *token.FileSet, dir string) (map[string][]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	pkgs := map[string][]*ast.File{}
	var warnings []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			warnings = append(warnings, err.Error())
			continue
		}
		pkgs[f.Name.Name] = append(pkgs[f.Name.Name], f)
	}
	return pkgs, warnings, nil
}

// importPath maps a directory to its import path under the module.
func importPath(root, module, dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return module
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}
