package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// unit is one type-checked bundle of files: a package together with its
// in-package _test.go files, or an external package_test package.
type unit struct {
	pkgPath string // import path (module path + relative directory)
	module  string // module path from go.mod
	dir     string
	fset    *token.FileSet
	files   []*ast.File
	info    *types.Info
	pkg     *types.Package
}

// Program is the whole typed module, loaded and type-checked once and
// shared by every analyzer.
//
//   - source holds exactly one non-test unit per module package, all
//     type-checked in a single shared universe (module-internal imports
//     resolve to the very *types.Package objects produced here), so
//     cross-package object identity holds and whole-program analyzers can
//     build a call graph over go/types.
//   - units holds the analysis units the command-line patterns selected:
//     the package including its in-package _test.go files, plus external
//     _test packages. Per-unit analyzers run over these.
type Program struct {
	fset   *token.FileSet
	module string
	units  []*unit
	source []*unit
	pkgs   map[string]*types.Package

	graphOnce sync.Once
	graph     *callGraph
}

// callGraph builds (once) and returns the program's CHA call graph.
func (p *Program) callGraph() *callGraph {
	p.graphOnce.Do(func() { p.graph = buildCallGraph(p) })
	return p.graph
}

// lookupPackage finds a module package by its path suffix (e.g.
// "internal/objstore"), searching the shared universe first and then the
// transitive imports of every unit — the latter matters in golden tests,
// where real module packages arrive via the source importer rather than
// as program units.
func (p *Program) lookupPackage(suffix string) *types.Package {
	if pkg, ok := p.pkgs[p.module+"/"+suffix]; ok && pkg != nil {
		return pkg
	}
	seen := map[*types.Package]bool{}
	var find func(pkg *types.Package) *types.Package
	find = func(pkg *types.Package) *types.Package {
		if pkg == nil || seen[pkg] {
			return nil
		}
		seen[pkg] = true
		if pkg.Path() == p.module+"/"+suffix {
			return pkg
		}
		for _, imp := range pkg.Imports() {
			if got := find(imp); got != nil {
				return got
			}
		}
		return nil
	}
	for _, u := range append(append([]*unit{}, p.source...), p.units...) {
		if got := find(u.pkg); got != nil {
			return got
		}
	}
	return nil
}

// moduleImporter resolves module-internal imports to the packages the
// loader already checked, falling back to the stdlib source importer for
// everything else. The fallback is serialized: srcimporter is not safe
// for concurrent use, while reads of completed packages are.
type moduleImporter struct {
	mu       sync.Mutex
	pkgs     map[string]*types.Package
	fallback types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if pkg, ok := m.pkgs[path]; ok && pkg != nil {
		return pkg, nil
	}
	//h2vet:ignore lockorder fallback is the stdlib source importer, never another moduleImporter; the lock also serializes srcimporter, which is not concurrency-safe
	return m.fallback.ImportFrom(path, dir, mode)
}

func (m *moduleImporter) add(path string, pkg *types.Package) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if pkg != nil {
		m.pkgs[path] = pkg
	}
}

// dirPkg groups one directory's files of one package name, split into
// importable sources and in-package test files. External _test packages
// carry their files in files (they have no importable half).
type dirPkg struct {
	name      string
	files     []*ast.File
	testFiles []*ast.File
}

// load parses the entire module once, type-checks every package once into
// a shared universe (topological order over module-internal imports), and
// returns the Program. The command-line patterns select which analysis
// units per-unit analyzers report on; whole-program analyzers always see
// the full module. Type errors are reported as warnings, not fatal:
// `go build` owns compile errors, h2vet owns invariants.
func load(patterns []string) (*Program, []string, error) {
	root, module, err := moduleRoot()
	if err != nil {
		return nil, nil, err
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, nil, err
	}
	selected, err := expandPatterns(patterns)
	if err != nil {
		return nil, nil, err
	}
	allDirs, err := moduleDirs(root, cwd)
	if err != nil {
		return nil, nil, err
	}
	selectedSet := map[string]bool{}
	for _, d := range selected {
		selectedSet[d] = true
		if !containsDir(allDirs, d) {
			allDirs = append(allDirs, d)
		}
	}
	sort.Strings(allDirs)

	fset := token.NewFileSet()
	var warnings []string
	var warnMu sync.Mutex
	warnf := func(msg string) {
		warnMu.Lock()
		defer warnMu.Unlock()
		warnings = append(warnings, msg)
	}

	// Parse every directory once.
	parsed := map[string]map[string]*dirPkg{} // dir -> package name -> files
	for _, dir := range allDirs {
		pkgs, warns, err := parseDir(fset, dir)
		if err != nil {
			return nil, nil, err
		}
		for _, w := range warns {
			warnf(w)
		}
		parsed[dir] = pkgs
	}

	// Topologically order the importable (non-_test) packages by their
	// module-internal imports, so each is checked after its dependencies.
	type pkgEntry struct {
		dir, name, path string
		dp              *dirPkg
		source          *unit
	}
	byPath := map[string]*pkgEntry{}
	var paths []string
	for _, dir := range allDirs {
		for name, dp := range parsed[dir] {
			if strings.HasSuffix(name, "_test") || len(dp.files) == 0 {
				continue
			}
			path := importPath(root, module, dir)
			if _, dup := byPath[path]; dup {
				continue
			}
			byPath[path] = &pkgEntry{dir: dir, name: name, path: path, dp: dp}
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	var order []*pkgEntry
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		e, ok := byPath[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		for _, dep := range moduleImports(module, e.dp.files) {
			visit(dep)
		}
		state[path] = 2
		order = append(order, e)
	}
	for _, path := range paths {
		visit(path)
	}

	imp := &moduleImporter{
		pkgs:     map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	check := func(pkgPath string, files []*ast.File) (*types.Package, *types.Info) {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { warnf(err.Error()) },
		}
		// The returned error repeats the first collected warning, so the
		// lenient check discards it.
		pkg, _ := conf.Check(pkgPath, fset, files, info)
		return pkg, info
	}

	prog := &Program{fset: fset, module: module, pkgs: imp.pkgs}
	for _, e := range order {
		pkg, info := check(e.path, e.dp.files)
		imp.add(e.path, pkg)
		e.source = &unit{pkgPath: e.path, module: module, dir: e.dir, fset: fset, files: e.dp.files, info: info, pkg: pkg}
		prog.source = append(prog.source, e.source)
	}

	// Build the analysis units the patterns selected. Packages whose test
	// files add nothing reuse the shared source unit; the rest re-check
	// with tests merged in. Those checks are independent (every module
	// import already resolves through the shared map), so they run in
	// parallel; unit order stays deterministic via preassigned slots.
	type job struct {
		slot    int
		pkgPath string
		dir     string
		files   []*ast.File
	}
	var jobs []job
	for _, dir := range allDirs {
		if !selectedSet[dir] {
			continue
		}
		names := make([]string, 0, len(parsed[dir]))
		for name := range parsed[dir] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			dp := parsed[dir][name]
			pkgPath := importPath(root, module, dir)
			switch {
			case !strings.HasSuffix(name, "_test") && len(dp.testFiles) == 0 && len(dp.files) > 0:
				if e := byPath[pkgPath]; e != nil && e.source != nil && e.name == name {
					prog.units = append(prog.units, e.source)
					continue
				}
				fallthrough
			default:
				files := append(append([]*ast.File{}, dp.files...), dp.testFiles...)
				if len(files) == 0 {
					continue
				}
				prog.units = append(prog.units, nil)
				jobs = append(jobs, job{slot: len(prog.units) - 1, pkgPath: pkgPath, dir: dir, files: files})
			}
		}
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			pkg, info := check(j.pkgPath, j.files)
			prog.units[j.slot] = &unit{pkgPath: j.pkgPath, module: module, dir: j.dir, fset: fset, files: j.files, info: info, pkg: pkg}
		}(j)
	}
	wg.Wait()

	sort.Strings(warnings)
	return prog, warnings, nil
}

// containsDir reports whether dirs already contains dir.
func containsDir(dirs []string, dir string) bool {
	for _, d := range dirs {
		if d == dir {
			return true
		}
	}
	return false
}

// moduleDirs walks the module root and returns every directory containing
// Go files, expressed relative to the working directory so diagnostic
// paths stay short and machine-independent.
func moduleDirs(root, cwd string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "bin") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(cwd, path)
		if err != nil {
			return err
		}
		if hasGoFiles(rel) {
			dirs = append(dirs, rel)
		}
		return nil
	})
	return dirs, err
}

// moduleImports returns the sorted module-internal import paths of files.
func moduleImports(module string, files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == module || strings.HasPrefix(path, module+"/")) && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// moduleRoot walks up from the working directory to go.mod and returns
// the directory and the module path it declares.
func moduleRoot() (dir, module string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("go.mod not found above working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves command-line patterns to a sorted list of
// directories containing Go files. "dir/..." walks recursively.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = filepath.Clean(strings.TrimSuffix(base, "/"))
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor" || name == "bin") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Clean(pat)
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("%s: not a directory", pat)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// parseDir parses every .go file in dir and groups the files by package
// name, splitting in-package _test.go files from the importable sources.
// External _test packages keep all their files in files.
func parseDir(fset *token.FileSet, dir string) (map[string]*dirPkg, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	pkgs := map[string]*dirPkg{}
	var warnings []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			warnings = append(warnings, err.Error())
			continue
		}
		pkgName := f.Name.Name
		dp := pkgs[pkgName]
		if dp == nil {
			dp = &dirPkg{name: pkgName}
			pkgs[pkgName] = dp
		}
		if strings.HasSuffix(name, "_test.go") && !strings.HasSuffix(pkgName, "_test") {
			dp.testFiles = append(dp.testFiles, f)
		} else {
			dp.files = append(dp.files, f)
		}
	}
	return pkgs, warnings, nil
}

// importPath maps a directory to its import path under the module.
func importPath(root, module, dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return module
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}
