// Command h2bench regenerates the paper's evaluation tables and figures
// (Table 1, Figures 7–15, the RTT analysis, the §1 headline numbers) and
// the design-choice ablations.
//
// Usage:
//
//	h2bench -exp all            # run everything at paper scale
//	h2bench -exp fig7,fig13     # selected experiments
//	h2bench -exp fig10 -quick   # reduced sweeps for a fast pass
//	h2bench -exp fig9 -csv out/ # also write CSV series
//	h2bench -exp chaos -json out/ # also write BENCH_<exp>.json artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/h2cloud/h2cloud/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiments, or 'all'; available: "+strings.Join(bench.Experiments, ","))
		quick = flag.Bool("quick", false, "reduced sweep sizes (seconds instead of minutes)")
		csv   = flag.String("csv", "", "directory to write per-experiment CSV files into")
		jsonD = flag.String("json", "", "directory to write per-experiment BENCH_<exp>.json files into")
		list  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.Experiments {
			fmt.Println(name)
		}
		return
	}
	names := bench.Experiments
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fatal(err)
		}
	}
	if *jsonD != "" {
		if err := os.MkdirAll(*jsonD, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		res, err := bench.Run(name, *quick)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Print(bench.FormatText(res))
		fmt.Printf("  (generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *csv != "" {
			path := filepath.Join(*csv, res.Experiment+".csv")
			if err := os.WriteFile(path, []byte(bench.FormatCSV(res)), 0o644); err != nil {
				fatal(err)
			}
		}
		if *jsonD != "" {
			path := filepath.Join(*jsonD, "BENCH_"+res.Experiment+".json")
			if err := os.WriteFile(path, []byte(bench.FormatJSON(res)), 0o644); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "h2bench:", err)
	os.Exit(1)
}
