// Command h2cloudd runs an H2Cloud deployment: an in-process object
// storage cloud, one or more H2Middlewares coordinating through gossip,
// and the web API (the paper's Figure 5 stack in one binary).
//
// Usage:
//
//	h2cloudd -addr :8420 -middlewares 2 -accounts alice,bob
//
// Each middleware flushes its dirty NameRings and the gossip bus delivers
// advertisements on the maintenance interval. Requests are spread across
// the middlewares round-robin, as a load balancer would.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"github.com/h2cloud/h2cloud"
	"github.com/h2cloud/h2cloud/internal/httpapi"
)

// accountOf extracts the account segment from the /v1/<verb>/<account>/...
// and /v1/accounts/<account> route shapes, or returns "".
func accountOf(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/")
	if !ok {
		return ""
	}
	verb, rest, ok := strings.Cut(rest, "/")
	if !ok {
		return ""
	}
	if verb == "accounts" {
		account, _, _ := strings.Cut(rest, "/")
		return account
	}
	if verb == "stats" {
		return ""
	}
	account, _, _ := strings.Cut(rest, "/")
	return account
}

func main() {
	var (
		addr     = flag.String("addr", ":8420", "listen address")
		mwCount  = flag.Int("middlewares", 1, "number of H2Middlewares (proxy instances)")
		nodes    = flag.Int("nodes", 8, "storage nodes in the simulated cloud")
		replicas = flag.Int("replicas", 3, "object replicas")
		accounts = flag.String("accounts", "", "comma-separated accounts to create at startup")
		interval = flag.Duration("maintenance", 2*time.Second, "background merge + gossip interval")
		simCost  = flag.Bool("simcost", false, "charge the paper-calibrated virtual service times (for experiments)")
		dataDir  = flag.String("datadir", "", "persist storage nodes under this directory (empty = in-memory)")
		gcQueue  = flag.Bool("gcqueue", false, "durable async reclamation: RMDIR returns at ring-patch cost and the maintenance loop drains a crash-safe GC queue (replaces eager subtree walks)")
	)
	flag.Parse()

	profile := h2cloud.ZeroProfile()
	if *simCost {
		profile = h2cloud.SwiftProfile()
	}
	cloud, err := h2cloud.NewCluster(h2cloud.ClusterConfig{
		Nodes: *nodes, Replicas: *replicas, Profile: profile, DataDir: *dataDir,
	})
	if err != nil {
		log.Fatalf("h2cloudd: %v", err)
	}
	bus := h2cloud.NewGossipBus()
	if *mwCount < 1 {
		*mwCount = 1
	}
	mws := make([]*h2cloud.Middleware, *mwCount)
	for i := range mws {
		mw, err := h2cloud.NewMiddleware(h2cloud.Config{
			Store: cloud, Node: i + 1, Profile: profile, Gossip: bus,
			EagerGC: !*gcQueue, GCQueue: *gcQueue,
			Metrics: h2cloud.NewMetricsRegistry(),
		})
		if err != nil {
			log.Fatalf("h2cloudd: middleware %d: %v", i+1, err)
		}
		mws[i] = mw
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, account := range strings.Split(*accounts, ",") {
		account = strings.TrimSpace(account)
		if account == "" {
			continue
		}
		if err := mws[0].CreateAccount(ctx, account); err != nil {
			if errors.Is(err, h2cloud.ErrExists) {
				log.Printf("account %q already present", account)
				continue
			}
			log.Fatalf("h2cloudd: create account %q: %v", account, err)
		}
		log.Printf("created account %q", account)
	}

	// Background Merger + gossip delivery (§4.5).
	go bus.Run(ctx, *interval)
	for _, mw := range mws {
		mw.StartMaintenance(ctx, *interval)
	}

	// Spread accounts across the middlewares with session affinity: the
	// NameRing maintenance protocol is asynchronous (§3.3.2), so a user's
	// requests stay on one middleware for read-your-writes while the
	// population load-balances by account. Requests without an account
	// (e.g. /v1/stats) round-robin.
	servers := make([]*httpapi.Server, len(mws))
	for i, mw := range mws {
		servers[i] = h2cloud.NewServer(mw)
	}
	var next atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		idx := int(next.Add(1)) % len(servers)
		if account := accountOf(r.URL.Path); account != "" {
			h := fnv.New32a()
			h.Write([]byte(account))
			idx = int(h.Sum32()) % len(servers)
		}
		servers[idx].ServeHTTP(w, r)
	})

	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("h2cloudd: %d middleware(s) over %d storage nodes, serving on %s",
		len(mws), *nodes, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("h2cloudd: %v", err)
	}
	fmt.Println("h2cloudd: bye")
}
