package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEnd builds the real binaries, boots an H2Cloud daemon with
// persistent storage, drives it through the CLI, restarts it, and checks
// the filesystem survived — the full production path in one test.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := t.TempDir()
	daemon := filepath.Join(bin, "h2cloudd")
	cli := filepath.Join(bin, "h2cli")
	for target, out := range map[string]string{
		".":        daemon,
		"../h2cli": cli,
	} {
		cmd := exec.Command("go", "build", "-o", out, target)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", target, err, b)
		}
	}

	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	server := "http://" + addr
	dataDir := filepath.Join(t.TempDir(), "data")

	startDaemon := func() *exec.Cmd {
		cmd := exec.Command(daemon,
			"-addr", addr, "-accounts", "e2e", "-datadir", dataDir,
			"-maintenance", "100ms", "-middlewares", "2")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitReady(t, server+"/v1/accounts/e2e")
		return cmd
	}
	stopDaemon := func(cmd *exec.Cmd) {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}

	run := func(args ...string) string {
		t.Helper()
		full := append([]string{"-server", server, "-account", "e2e"}, args...)
		out, err := exec.Command(cli, full...).CombinedOutput()
		if err != nil {
			t.Fatalf("h2cli %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	proc := startDaemon()
	defer func() { stopDaemon(proc) }() // proc is rebound on restart

	// Drive a session through the CLI.
	run("mkdir", "/docs")
	local := filepath.Join(t.TempDir(), "up.txt")
	if err := os.WriteFile(local, []byte("end to end"), 0o644); err != nil {
		t.Fatal(err)
	}
	run("put", "/docs/up.txt", local)
	if out := run("ls", "/docs"); !strings.Contains(out, "up.txt") {
		t.Fatalf("ls = %q", out)
	}
	if out := run("get", "/docs/up.txt"); out != "end to end" {
		t.Fatalf("get = %q", out)
	}
	run("mv", "/docs/up.txt", "/docs/renamed.txt")
	if out := run("stat", "/docs/renamed.txt"); !strings.Contains(out, "size: 10") {
		t.Fatalf("stat = %q", out)
	}
	run("cp", "/docs/renamed.txt", "/docs/copy.txt")
	if out := run("ls", "/docs", "-l"); !strings.Contains(out, "copy.txt") {
		t.Fatalf("ls -l = %q", out)
	}
	// Mirror a small local tree with sync-up.
	srcDir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(srcDir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(srcDir, "top.txt"), []byte("t"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(srcDir, "sub", "deep.txt"), []byte("d"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out := run("sync-up", "/mirror", srcDir); !strings.Contains(out, "uploaded 2 files") {
		t.Fatalf("sync-up = %q", out)
	}
	if out := run("get", "/mirror/sub/deep.txt"); out != "d" {
		t.Fatalf("synced get = %q", out)
	}

	// Let the maintenance loop flush NameRing patches to disk.
	time.Sleep(400 * time.Millisecond)

	// Restart on the same data directory: everything must survive.
	stopDaemon(proc)
	proc = startDaemon()
	if out := run("get", "/docs/renamed.txt"); out != "end to end" {
		t.Fatalf("get after restart = %q", out)
	}
	if out := run("ls", "/docs"); !strings.Contains(out, "copy.txt") {
		t.Fatalf("ls after restart = %q", out)
	}
	run("rmdir", "/docs")
	if out := run("ls", "/"); strings.Contains(out, "docs") {
		t.Fatalf("rmdir did not remove: %q", out)
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func waitReady(t *testing.T, probe string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		req, _ := http.NewRequest(http.MethodHead, probe, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon did not become ready")
}
