package main

import (
	"context"
	"strings"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/h2fs"
)

func populatedCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	mw, err := h2fs.New(h2fs.Config{Store: c, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := mw.CreateAccount(ctx, "demo"); err != nil {
		t.Fatal(err)
	}
	fs := mw.FS("demo")
	if err := fs.Mkdir(ctx, "/photos"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/photos/cat.jpg", []byte("meow-bytes")); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassifyObjectKinds(t *testing.T) {
	c := populatedCluster(t)
	ctx := context.Background()
	kinds := map[string]int{}
	for _, name := range allNames(c) {
		data, info, err := c.Get(ctx, name)
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		label := classify(name, info, data)
		switch {
		case strings.HasPrefix(label, "account-root"):
			kinds["root"]++
		case label == "NameRing":
			kinds["ring"]++
		case label == "patch":
			kinds["patch"]++
		case strings.HasPrefix(label, "directory"):
			kinds["dir"]++
		case strings.HasPrefix(label, "file"):
			kinds["file"]++
		default:
			t.Fatalf("unclassified object %s: %s", name, label)
		}
	}
	// Root record, root ring + photos ring, one dir object, one file, and
	// the unflushed patch from the write.
	if kinds["root"] != 1 || kinds["ring"] != 2 || kinds["dir"] != 1 || kinds["file"] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	if kinds["patch"] == 0 {
		t.Fatalf("no patch objects classified: %v", kinds)
	}
}

func TestAllNamesDeduplicatesReplicas(t *testing.T) {
	c := populatedCluster(t)
	names := allNames(c)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
	}
	// Every name must resolve through the cluster.
	for _, n := range names {
		if _, err := c.Head(context.Background(), n); err != nil {
			t.Fatalf("head %s: %v", n, err)
		}
	}
	// And the root record must be among them.
	if !seen[core.RootKey("demo")] {
		t.Fatalf("root record missing from %v", names)
	}
}
