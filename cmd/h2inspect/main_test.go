package main

import (
	"context"
	"strings"
	"testing"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/h2fs"
)

func populatedCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Profile: cluster.ZeroProfile()})
	if err != nil {
		t.Fatal(err)
	}
	mw, err := h2fs.New(h2fs.Config{Store: c, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := mw.CreateAccount(ctx, "demo"); err != nil {
		t.Fatal(err)
	}
	fs := mw.FS("demo")
	if err := fs.Mkdir(ctx, "/photos"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/photos/cat.jpg", []byte("meow-bytes")); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassifyObjectKinds(t *testing.T) {
	c := populatedCluster(t)
	ctx := context.Background()
	kinds := map[string]int{}
	for _, name := range allNames(c) {
		data, info, err := c.Get(ctx, name)
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		label := classify(name, info, data)
		switch {
		case strings.HasPrefix(label, "account-root"):
			kinds["root"]++
		case label == "NameRing":
			kinds["ring"]++
		case label == "patch":
			kinds["patch"]++
		case strings.HasPrefix(label, "directory"):
			kinds["dir"]++
		case strings.HasPrefix(label, "file"):
			kinds["file"]++
		default:
			t.Fatalf("unclassified object %s: %s", name, label)
		}
	}
	// Root record, root ring + photos ring, one dir object, one file, and
	// the unflushed patch from the write.
	if kinds["root"] != 1 || kinds["ring"] != 2 || kinds["dir"] != 1 || kinds["file"] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	if kinds["patch"] == 0 {
		t.Fatalf("no patch objects classified: %v", kinds)
	}
}

func TestAllNamesDeduplicatesReplicas(t *testing.T) {
	c := populatedCluster(t)
	names := allNames(c)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
	}
	// Every name must resolve through the cluster.
	for _, n := range names {
		if _, err := c.Head(context.Background(), n); err != nil {
			t.Fatalf("head %s: %v", n, err)
		}
	}
	// And the root record must be among them.
	if !seen[core.RootKey("demo")] {
		t.Fatalf("root record missing from %v", names)
	}
}

// TestFsckFindsAndReclaimsOrphans: a clean cluster checks out, a planted
// stray object is reported as an orphan, and the reclaim mode deletes
// exactly that object while the live tree survives.
func TestFsckFindsAndReclaimsOrphans(t *testing.T) {
	c := populatedCluster(t)
	ctx := context.Background()

	rep, err := fsck(c, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Orphans) != 0 || rep.Live != rep.Objects {
		t.Fatalf("clean cluster misreported: %+v", rep)
	}

	stray := "demo|N9999::lost"
	if err := c.Put(ctx, stray, []byte("junk"), nil); err != nil {
		t.Fatal(err)
	}
	rep, err = fsck(c, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Orphans) != 1 || rep.Orphans[0] != stray {
		t.Fatalf("orphans = %v, want [%s]", rep.Orphans, stray)
	}

	rep, err = fsck(c, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", rep.Reclaimed)
	}
	if _, err := c.Head(ctx, stray); err == nil {
		t.Fatal("stray object survived reclaim")
	}
	rep, err = fsck(c, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after reclaim: %v", rep.Orphans)
	}
}

// TestClassifyGCQueueObjects: queue entries and the index get their own
// labels in the objects listing.
func TestClassifyGCQueueObjects(t *testing.T) {
	c := populatedCluster(t)
	ctx := context.Background()
	mw, err := h2fs.New(h2fs.Config{Store: c, Node: 1, EagerGC: false, GCQueue: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.FS("demo").Rmdir(ctx, "/photos"); err != nil {
		t.Fatal(err)
	}
	labels := map[string]int{}
	for _, name := range allNames(c) {
		data, info, err := c.Get(ctx, name)
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		label := classify(name, info, data)
		switch {
		case label == "gc-queue index":
			labels["index"]++
		case strings.HasPrefix(label, "gc-queue entry"):
			labels["entry"]++
		}
	}
	if labels["index"] != 1 || labels["entry"] != 1 {
		t.Fatalf("gc labels = %v, want 1 index / 1 entry", labels)
	}
}
