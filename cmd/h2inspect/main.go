// Command h2inspect examines the objects of a persistent H2Cloud data
// directory offline — the operator's view of what "the whole filesystem
// in an object storage cloud" physically looks like: file objects,
// directory objects, NameRings and patches, all as flat objects.
//
// Usage:
//
//	h2inspect -datadir DIR objects            list every object with its decoded type
//	h2inspect -datadir DIR account ACCOUNT    show the account's root namespace
//	h2inspect -datadir DIR ring ACCOUNT NS    decode a NameRing object
//	h2inspect -datadir DIR tree ACCOUNT       walk and print the directory tree
//	h2inspect -datadir DIR fsck [reclaim]     cross-check every object against the
//	                                          live tree and the GC queue; report
//	                                          (and with "reclaim", delete) orphans
//
// fsck reads a point-in-time view of the data directory: run it against
// a quiescent store (no middleware serving writes). Check mode is
// always safe; "reclaim" additionally re-verifies each orphan against
// the ring state before deleting, but only quiescence guarantees that
// an in-flight create is never misread as an orphan.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/h2cloud/h2cloud/internal/cluster"
	"github.com/h2cloud/h2cloud/internal/core"
	"github.com/h2cloud/h2cloud/internal/h2fs"
	"github.com/h2cloud/h2cloud/internal/objstore"
)

func main() {
	dataDir := flag.String("datadir", "", "cluster data directory (required)")
	nodes := flag.Int("nodes", 8, "storage node count the cluster was built with")
	replicas := flag.Int("replicas", 3, "replica count the cluster was built with")
	flag.Parse()
	if *dataDir == "" || flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: h2inspect -datadir DIR <objects|account|ring|tree> [args]")
		os.Exit(2)
	}
	c, err := cluster.New(cluster.Config{
		DataDir: *dataDir, Nodes: *nodes, Replicas: *replicas,
		Profile: cluster.ZeroProfile(),
	})
	if err != nil {
		fail(err)
	}
	switch cmd := flag.Arg(0); cmd {
	case "objects":
		listObjects(c)
	case "account":
		needArgs(2)
		showAccount(c, flag.Arg(1))
	case "ring":
		needArgs(3)
		showRing(c, flag.Arg(1), flag.Arg(2))
	case "tree":
		needArgs(2)
		showTree(c, flag.Arg(1))
	case "fsck":
		runFsck(c, flag.NArg() > 1 && flag.Arg(1) == "reclaim")
	default:
		fail(fmt.Errorf("unknown command %q", cmd))
	}
}

func needArgs(n int) {
	if flag.NArg() < n {
		fmt.Fprintln(os.Stderr, "h2inspect: missing arguments")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "h2inspect:", err)
	os.Exit(1)
}

// allNames unions object names across every node (replicas deduplicated).
func allNames(c *cluster.Cluster) []string {
	seen := map[string]bool{}
	for _, id := range c.Ring().DeviceIDs() {
		for _, name := range c.Node(id).Names() {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// classify names the object kind from its key and content.
func classify(key string, info objstore.ObjectInfo, data []byte) string {
	switch {
	case strings.HasSuffix(key, "|/root"):
		return "account-root -> ns " + string(data)
	case core.IsGCIndexKey(key):
		return "gc-queue index"
	case core.IsGCQueueKey(key):
		e, err := core.DecodeGCEntry(data)
		if err != nil {
			return "gc-queue entry (corrupt)"
		}
		return "gc-queue entry -> ns " + e.NS
	case strings.Contains(key, "::/NameRing/.Node"):
		return "patch"
	case core.IsExtentKey(key):
		r, err := core.DecodeNameRing(data)
		if err != nil {
			return "NameRing extent (corrupt)"
		}
		_, _, shard, shards, _ := core.ParseExtentKey(key)
		return fmt.Sprintf("NameRing extent %d/%d (%d tuples)", shard, shards, r.TotalLen())
	case strings.HasSuffix(key, "::/NameRing/"):
		if core.IsShardManifest(data) {
			m, err := core.DecodeShardManifest(data)
			if err != nil {
				return "shard manifest (corrupt)"
			}
			return fmt.Sprintf("shard manifest (%d extents, gen %d)", m.Shards, m.Gen)
		}
		return "NameRing"
	case core.IsDirObject(data):
		d, err := core.DecodeDir(data)
		if err != nil {
			return "directory (corrupt)"
		}
		return "directory -> ns " + d.NS
	case info.Meta["h2type"] == "file" || !strings.Contains(key, "|"):
		return fmt.Sprintf("file (%d bytes)", info.Size)
	default:
		return fmt.Sprintf("object (%d bytes)", info.Size)
	}
}

func listObjects(c *cluster.Cluster) {
	ctx := bg()
	for _, name := range allNames(c) {
		data, info, err := c.Get(ctx, name)
		if err != nil {
			fmt.Printf("%-60s UNREADABLE: %v\n", name, err)
			continue
		}
		fmt.Printf("%-60s %s\n", name, classify(name, info, data))
	}
}

func showAccount(c *cluster.Cluster, account string) {
	data, _, err := c.Get(bg(), core.RootKey(account))
	if err != nil {
		fail(fmt.Errorf("account %q: %w", account, err))
	}
	fmt.Printf("account: %s\nroot namespace: %s\n", account, data)
}

// readRing fetches and decodes a directory's ring, following an H2DRX
// manifest out to its extents when the directory is sharded. shards is 1
// for a monolithic ring.
func readRing(c *cluster.Cluster, account, ns string) (*core.NameRing, objstore.ObjectInfo, int, error) {
	data, info, err := c.Get(bg(), core.RingKey(account, ns))
	if err != nil {
		return nil, info, 0, err
	}
	if !core.IsShardManifest(data) {
		ring, derr := core.DecodeNameRing(data)
		return ring, info, 1, derr
	}
	man, derr := core.DecodeShardManifest(data)
	if derr != nil {
		return nil, info, 0, derr
	}
	extents := make([]*core.NameRing, man.Shards)
	for i, res := range objstore.MultiGet(bg(), c, core.ExtentKeys(account, ns, man.Shards)) {
		if res.Err != nil {
			continue // a torn extent reads as empty, matching the middleware
		}
		if ext, eerr := core.DecodeNameRing(res.Data); eerr == nil {
			extents[i] = ext
		}
	}
	return core.MergedExtents(extents), info, man.Shards, nil
}

func showRing(c *cluster.Cluster, account, ns string) {
	ring, info, shards, err := readRing(c, account, ns)
	if err != nil {
		fail(err)
	}
	if shards > 1 {
		fmt.Printf("NameRing %s::%s  (%d tuples, %d live, sharded over %d extents)\n",
			account, ns, ring.TotalLen(), ring.Len(), shards)
	} else {
		fmt.Printf("NameRing %s::%s  (%d tuples, %d live)\n", account, ns, ring.TotalLen(), ring.Len())
	}
	for k, v := range info.Meta {
		if strings.HasPrefix(k, "wm.") {
			fmt.Printf("  merge watermark %s = %s\n", strings.TrimPrefix(k, "wm."), v)
		}
	}
	for _, t := range ring.All() {
		flags := ""
		if t.Dir {
			flags += " dir"
		}
		if t.Deleted {
			flags += " DELETED"
		}
		ns := ""
		if t.NS != "" {
			ns = " ns=" + t.NS
		}
		fmt.Printf("  %-30q t=%d%s%s\n", t.Name, t.Time, flags, ns)
	}
}

func showTree(c *cluster.Cluster, account string) {
	rootData, _, err := c.Get(bg(), core.RootKey(account))
	if err != nil {
		fail(fmt.Errorf("account %q: %w", account, err))
	}
	var walk func(ns, indent string)
	walk = func(ns, indent string) {
		ring, _, _, err := readRing(c, account, ns)
		if err != nil {
			fmt.Printf("%s!! ring %s unreadable: %v\n", indent, ns, err)
			return
		}
		for _, t := range ring.Live() {
			if t.Dir {
				fmt.Printf("%s%s/\n", indent, t.Name)
				walk(t.NS, indent+"  ")
			} else {
				fmt.Printf("%s%s\n", indent, t.Name)
			}
		}
	}
	fmt.Printf("%s:/\n", account)
	walk(string(rootData), "  ")
}

// fsck cross-checks every stored object against live reachability and
// pending GC intents through the middleware's scrubber. It assumes a
// quiescent data directory — reclaim mode deletes what the point-in-time
// view proves unreachable, and h2inspect runs offline by construction.
func fsck(c *cluster.Cluster, reclaim bool) (h2fs.ScrubReport, error) {
	mw, err := h2fs.New(h2fs.Config{Store: c, Node: 0})
	if err != nil {
		return h2fs.ScrubReport{}, err
	}
	return mw.Scrub(bg(), allNames(c), reclaim)
}

func runFsck(c *cluster.Cluster, reclaim bool) {
	rep, err := fsck(c, reclaim)
	if err != nil {
		fail(err)
	}
	fmt.Printf("objects: %d\nlive: %d\nqueued: %d\ninfra: %d\norphans: %d\n",
		rep.Objects, rep.Live, rep.Queued, rep.Infra, len(rep.Orphans))
	for _, o := range rep.Orphans {
		fmt.Printf("  orphan %s\n", o)
	}
	if reclaim {
		fmt.Printf("reclaimed: %d\n", rep.Reclaimed)
	} else if len(rep.Orphans) > 0 {
		os.Exit(1) // check-only mode: orphans are a finding
	}
}

func bg() context.Context { return context.Background() }
