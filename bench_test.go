// One testing.B benchmark per table and figure of the paper's evaluation
// (§5). Each benchmark regenerates its experiment through internal/bench
// and reports the headline simulated operation time as a custom metric,
// so `go test -bench=. -benchmem` doubles as a reproduction run. The
// cmd/h2bench binary produces the full series at paper scale.
package h2cloud_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/h2cloud/h2cloud"
	"github.com/h2cloud/h2cloud/internal/bench"
)

// benchNs keeps testing.B sweeps fast; h2bench runs the paper's full
// 10..100,000 range.
var benchNs = []int{10, 100, 1000}

// reportFinal publishes each system's largest-scale simulated time as a
// benchmark metric (ms).
func reportFinal(b *testing.B, r bench.Result) {
	b.Helper()
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			continue
		}
		p := s.Points[len(s.Points)-1]
		b.ReportMetric(p.Y, "simms/"+sanitize(s.System))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkTable1Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Move(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Fig7Move(benchNs); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

func BenchmarkFig8Rmdir(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Fig8Rmdir(benchNs); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

func BenchmarkFig9ListVsN(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Fig9ListVsN(benchNs, 1000); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

func BenchmarkFig10ListVsM(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Fig10ListVsM(benchNs); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

func BenchmarkFig11Copy(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Fig11Copy(benchNs); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

func BenchmarkFig12Mkdir(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Fig12Mkdir(benchNs); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

func BenchmarkFig13Access(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Fig13Access([]int{1, 4, 8, 16, 20}); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

func BenchmarkFig14ObjectCount(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Fig14ObjectCount([]int{500, 2000}); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

func BenchmarkFig15ObjectSize(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Fig15ObjectSize([]int{500, 2000}); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

func BenchmarkRTTAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RTT(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	var r bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = bench.Headline(); err != nil {
			b.Fatal(err)
		}
	}
	reportFinal(b, r)
}

// Wall-clock benchmarks of the public API over a zero-cost cloud: real
// data-structure work only, no simulated service times.
func newBenchFS(b *testing.B) *h2cloud.AccountFS {
	b.Helper()
	cloud, err := h2cloud.NewCluster(h2cloud.ClusterConfig{Profile: h2cloud.ZeroProfile()})
	if err != nil {
		b.Fatal(err)
	}
	mw, err := h2cloud.NewMiddleware(h2cloud.Config{Store: cloud, Node: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := mw.CreateAccount(context.Background(), "bench"); err != nil {
		b.Fatal(err)
	}
	return mw.FS("bench")
}

func BenchmarkH2WriteFile(b *testing.B) {
	fs := newBenchFS(b)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/d/f%08d", i), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkH2Stat(b *testing.B) {
	fs := newBenchFS(b)
	ctx := context.Background()
	path := ""
	for d := 0; d < 4; d++ {
		path += fmt.Sprintf("/d%d", d)
		if err := fs.Mkdir(ctx, path); err != nil {
			b.Fatal(err)
		}
	}
	if err := fs.WriteFile(ctx, path+"/leaf", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat(ctx, path+"/leaf"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkH2List1000(b *testing.B) {
	fs := newBenchFS(b)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/d/f%06d", i), []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.List(ctx, "/d", false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkH2MoveDirectory(b *testing.B) {
	fs := newBenchFS(b)
	ctx := context.Background()
	if err := fs.Mkdir(ctx, "/src0"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/src0/f%06d", i), []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.Move(ctx, fmt.Sprintf("/src%d", i), fmt.Sprintf("/src%d", i+1)); err != nil {
			b.Fatal(err)
		}
	}
}
